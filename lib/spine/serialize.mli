(** Binary persistence for SPINE indexes.

    A SPINE index is fully determined by its vertebra labels (the data
    string), links, ribs and extribs; this module writes them in a
    compact little-endian format and reads them back without
    re-running construction.  The format is self-describing (magic,
    version, alphabet) and ends with a whole-snapshot CRC-32C, so a
    flipped bit anywhere in the image is rejected before any of it is
    decoded.  This is what {!Disk} images and the CLI's
    [index save/load] commands use.

    Version history: v2 (current) added the trailing checksum; v1
    images — same record layout, no trailer — still load, without the
    whole-image integrity cover, and must consume their input exactly
    (so a v2 image whose version byte is corrupted cannot sneak past
    the CRC as v1). *)

val to_bytes : Index.t -> Bytes.t

val of_bytes : Bytes.t -> Index.t
(** @raise Spine_error.Error ([Corrupt], region ["snapshot"]) on bad
    magic, unsupported version, checksum mismatch, truncation or a
    structurally impossible record; the payload's [page] field carries
    the byte offset of the failure where applicable. *)

val to_file : string -> Index.t -> unit

val of_file : string -> Index.t
(** @raise Spine_error.Error as {!of_bytes}, plus [Io_failed] when the
    file cannot be read. *)

val header_size : int
(** Fixed bytes before the payload; exposed for format tests. *)

val trailer_size : int
(** Bytes of the trailing whole-snapshot checksum. *)
