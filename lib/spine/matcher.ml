(** Streaming matching over a SPINE index (Section 4 of the paper).

    Computes matching statistics of a query against the indexed string,
    maintaining the invariant that the current state [(node, len)] is
    the {e termination node} of the current match (the end of its first
    occurrence in the data string) together with its length.  On a
    failed extension the matcher first tries shorter suffixes that
    terminate at the same node (bounded by the rib's pathlength
    thresholds), then follows the backward link — one check per {e set}
    of suffixes, which is SPINE's advantage over the suffix tree's
    one-suffix-link-per-suffix walk (Section 4.1, Table 6). *)

(* aliases taken before [Search] is shadowed by the applied functor *)
let c_vertebra_hops = Search.c_vertebra_hops
let c_extrib_hops = Search.c_extrib_hops
let c_link_hops = Search.c_link_hops
let c_word_steps = Search.c_word_steps
let c_scalar_steps = Search.c_scalar_steps
let trace_step = Search.trace_step

(* The result types are store-independent, so they are defined once
   here — every front-end and the engine share this single canonical
   definition instead of re-equating a per-functor copy. *)

type stats = {
  nodes_checked : int;
  suffixes_checked : int;
}

type mmatch = {
  query_end : int;
  length : int;
  data_ends : int list;
}

module type S = sig
  type store

  type state

  val make : store -> state
  val resume : store -> node:int -> len:int -> state
  val consume : state -> int -> unit
  val node_of : state -> int
  val len_of : state -> int
  val stats_of : state -> stats

  val matching_statistics :
    store -> Bioseq.Packed_seq.t -> int array * stats

  val maximal_matches :
    ?immediate:bool ->
    store -> threshold:int -> Bioseq.Packed_seq.t -> mmatch list * stats
end

module Make (S : Store_sig.S) = struct
  module Search = Search.Make (S)

  type store = S.t

  type state = {
    t : S.t;
    mutable v : int;      (* termination node of the current match *)
    mutable len : int;    (* current match length *)
    mutable nodes : int;
    mutable suffixes : int;
  }

  let make t = { t; v = 0; len = 0; nodes = 0; suffixes = 0 }

  (* A state positioned mid-match: Cursor resumes the streaming step
     from its own (node, len) window without seeing the fields. *)
  let resume t ~node ~len = { t; v = node; len; nodes = 0; suffixes = 0 }

  let node_of st = st.v
  let len_of st = st.len

  (* Largest pathlength the rib [pt] + its extrib chain supports, i.e.
     the longest suffix ending at this node that the edge can extend. *)
  let max_threshold st ~rib_dest ~rib_pt =
    let rec chase cur best =
      match S.find_extrib st.t cur with
      | None -> best
      | Some (edest, ept, eprt, eanchor) ->
        st.nodes <- st.nodes + 1;
        Telemetry.incr c_extrib_hops;
        Profile.step_extrib ();
        if Trace.on () then trace_step "step.extrib" ~node:cur ~dest:edest;
        chase edest
          (if eprt = rib_pt && eanchor = rib_dest then max best ept else best)
    in
    chase rib_dest rib_pt

  (* Destination when traversing the rib with pathlength [k]. *)
  let dest_for st ~rib_dest ~rib_pt k =
    if k <= rib_pt then rib_dest
    else begin
      let rec chase cur =
        match S.find_extrib st.t cur with
        | None -> assert false (* caller checked k <= max_threshold *)
        | Some (edest, ept, eprt, eanchor) ->
          st.nodes <- st.nodes + 1;
          Telemetry.incr c_extrib_hops;
          Profile.step_extrib ();
          if Trace.on () then trace_step "step.extrib" ~node:cur ~dest:edest;
          if eprt = rib_pt && eanchor = rib_dest && ept >= k then edest
          else chase edest
      in
      chase rib_dest
    end

  (* Consume one query character, updating the state to the longest
     suffix of (current match + c) present in the data string. *)
  let consume st c =
    let t = st.t in
    let rec attempt () =
      st.nodes <- st.nodes + 1;
      let nxt = Search.step t st.v st.len c in
      if nxt >= 0 then begin
        st.v <- nxt;
        st.len <- st.len + 1
      end
      else if st.v = 0 then ()  (* len = 0 at the root: no match *)
      else begin
        (* try shorter suffixes that still terminate at [v]: they are
           the lengths in (link_lel v, len), all served by the same rib
           up to its maximum threshold *)
        let lel = S.link_lel t st.v in
        let served =
          match S.find_rib t st.v c with
          | None -> None
          | Some (dest, pt) ->
            let maxpt = max_threshold st ~rib_dest:dest ~rib_pt:pt in
            let k = min (st.len - 1) maxpt in
            if k > lel then Some (dest_for st ~rib_dest:dest ~rib_pt:pt k, k)
            else None
        in
        match served with
        | Some (dest, k) ->
          st.v <- dest;
          st.len <- k + 1
        | None ->
          (* one backward link hop dispatches every remaining suffix
             terminating at [v] *)
          st.suffixes <- st.suffixes + 1;
          Telemetry.incr c_link_hops;
          Profile.step_link ();
          let dest = S.link_dest t st.v in
          if Trace.on () then trace_step "step.link" ~node:st.v ~dest;
          st.len <- lel;
          st.v <- dest;
          attempt ()
      end
    in
    attempt ()

  let stats_of st = { nodes_checked = st.nodes; suffixes_checked = st.suffixes }

  (* Bulk streaming extension: the vertebra run out of state node [v]
     spells text[v..], and vertebra steps carry no threshold check, so
     one packed mismatch of the query span against the text row extends
     the match word-at-a-time.  Counter parity with the scalar loop:
     each matched character is one vertebra step and one node check.
     Returns the number of characters consumed; the caller handles the
     boundary character (rib/extrib/link logic) through {!consume}. *)
  let bulk_extend st q i =
    let t = st.t in
    let limit =
      min (Bioseq.Packed_seq.length q - i) (S.length t - st.v)
    in
    if limit <= 0 then 0
    else begin
      let run, words, scalars =
        Bioseq.Packed_seq.mismatch (S.sequence t) ~apos:st.v q ~bpos:i
          ~len:limit
      in
      if run > 0 then begin
        Telemetry.add c_vertebra_hops run;
        Profile.add_vertebras run;
        st.nodes <- st.nodes + run;
        if Trace.on () then
          Trace.instant "step.vertebra_run"
            [ Trace.Int ("node", st.v); Trace.Int ("len", run) ];
        st.v <- st.v + run;
        st.len <- st.len + run
      end;
      if words > 0 then begin
        Telemetry.add c_word_steps words;
        Profile.add_word_steps words
      end;
      if scalars > 0 then begin
        Telemetry.add c_scalar_steps scalars;
        Profile.add_scalar_steps scalars
      end;
      run
    end

  let matching_statistics t q =
    let m = Bioseq.Packed_seq.length q in
    let ms = Array.make (max m 1) 0 in
    let st = make t in
    let i = ref 0 in
    while !i < m do
      let run = bulk_extend st q !i in
      for k = 1 to run do
        ms.(!i + k - 1) <- st.len - run + k
      done;
      i := !i + run;
      if !i < m then begin
        consume st (Bioseq.Packed_seq.get q !i);
        ms.(!i) <- st.len;
        incr i
      end
    done;
    (ms, stats_of st)

  (* The paper's complex matching operation: stream the query through
     the index recording (first-occurrence node, length) at every
     right-maximal position above the threshold, then resolve every
     occurrence of all reported matches in ONE deferred sequential
     backbone scan (Section 4's batched target-node-buffer strategy). *)
  let maximal_matches ?(immediate = false) t ~threshold q =
    let m = Bioseq.Packed_seq.length q in
    let ms = Array.make (max m 1) 0 in
    let end_node = Array.make (max m 1) (-1) in
    let st = make t in
    let i = ref 0 in
    while !i < m do
      let run = bulk_extend st q !i in
      for k = 1 to run do
        let pos = !i + k - 1 in
        ms.(pos) <- st.len - run + k;
        (* within a vertebra run the state node advances in lockstep
           with the match length, so the intermediate end nodes are
           recoverable without re-walking *)
        end_node.(pos) <- st.v - run + k
      done;
      i := !i + run;
      if !i < m then begin
        consume st (Bioseq.Packed_seq.get q !i);
        ms.(!i) <- st.len;
        end_node.(!i) <- (if st.len = 0 then -1 else st.v);
        incr i
      end
    done;
    let reported = ref [] in
    for i = m - 1 downto 0 do
      let right_maximal = i = m - 1 || ms.(i + 1) <= ms.(i) in
      if right_maximal && ms.(i) >= threshold && threshold > 0 then
        reported := (i, ms.(i), end_node.(i)) :: !reported
    done;
    let reported = Array.of_list !reported in
    (* a node id is the end of a prefix, so end node [e] corresponds to
       the 0-based data position [e - 1] *)
    let ends_of buffer =
      Xutil.Int_vec.fold buffer ~init:[] ~f:(fun acc e -> (e - 1) :: acc)
      |> List.rev
    in
    let matches =
      if immediate then
        (* ablation mode: a separate backbone scan per match *)
        Array.map
          (fun (i, len, first) ->
            let buf = Search.occurrences_batch t [| (first, len) |] in
            { query_end = i; length = len; data_ends = ends_of buf.(0) })
          reported
      else begin
        let firsts = Array.map (fun (_, len, first) -> (first, len)) reported in
        let buffers = Search.occurrences_batch t firsts in
        Array.mapi
          (fun j (i, len, _) ->
            { query_end = i; length = len; data_ends = ends_of buffers.(j) })
          reported
      end
    in
    (Array.to_list matches, stats_of st)
end
