(** Structural statistics of a SPINE index.

    These back the paper's Table 3 (maximum numeric label values),
    Table 4 (rib-fanout distribution across nodes) and Figure 8
    (distribution of link destinations along the backbone). *)

(** {2 Canonical result types} — store-independent, shared by every
    instantiation, every front-end and {!Engine}. *)

type label_maxima = {
  max_pt : int;    (** over ribs and extribs *)
  max_lel : int;   (** over links *)
  max_prt : int;   (** over extribs *)
}

type edge_counts = {
  vertebras : int;
  ribs : int;
  extribs : int;
  links : int;
}

(** The statistics surface over one store type; [Make] produces it for
    any {!Store_sig.S} implementation. *)
module type S = sig
  type store

  val label_maxima : store -> label_maxima

  val rib_distribution : store -> int array
  (** [counts.(k)] = number of nodes with exactly [k] downstream edges
      (ribs + extrib, vertebras excluded),
      [k = 0 .. alphabet size + 1]. *)

  val edge_counts : store -> edge_counts

  val link_histogram : store -> buckets:int -> int array
  (** Histogram of link destinations over [buckets] equal slices of the
      backbone: Figure 8's evidence that links point overwhelmingly to
      the top of the structure.  Raises [Invalid_argument] when
      [buckets < 1]. *)
end

module Make (St : Store_sig.S) : S with type store = St.t
