(** Structural statistics of a SPINE index.

    These back the paper's Table 3 (maximum numeric label values),
    Table 4 (rib-fanout distribution across nodes) and Figure 8
    (distribution of link destinations along the backbone). *)

module Make (S : Store_sig.S) : sig
  type label_maxima = {
    max_pt : int;    (** over ribs and extribs *)
    max_lel : int;   (** over links *)
    max_prt : int;   (** over extribs *)
  }

  val label_maxima : S.t -> label_maxima

  val rib_distribution : S.t -> int array
  (** [counts.(k)] = number of nodes with exactly [k] downstream edges
      (ribs + extrib, vertebras excluded),
      [k = 0 .. alphabet size + 1]. *)

  type edge_counts = {
    vertebras : int;
    ribs : int;
    extribs : int;
    links : int;
  }

  val edge_counts : S.t -> edge_counts

  val link_histogram : S.t -> buckets:int -> int array
  (** Histogram of link destinations over [buckets] equal slices of the
      backbone: Figure 8's evidence that links point overwhelmingly to
      the top of the structure.  Raises [Invalid_argument] when
      [buckets < 1]. *)
end
