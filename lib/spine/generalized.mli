(** Generalized SPINE: one index over several strings.

    The paper notes that "a single SPINE index can be used to index
    multiple different strings, using techniques similar to those
    employed in Generalized Suffix Trees".  Strings are appended to one
    backbone separated by the alphabet's reserved separator code; query
    patterns never contain the separator, so no match can span two
    strings, and global positions translate back to
    [(string id, local position)]. *)

type t

val create : Bioseq.Alphabet.t -> t

val add : t -> ?name:string -> Bioseq.Packed_seq.t -> int
(** Append one more string to the index (online); returns its id.
    @raise Invalid_argument if the sequence's alphabet differs. *)

val add_string : t -> ?name:string -> string -> int

val count : t -> int
(** Number of strings indexed. *)

val name : t -> int -> string
val string_length : t -> int -> int

val index : t -> Index.t
(** The underlying single-backbone index (for statistics etc.). *)

val engine : t -> Engine.t
(** The underlying index packed as a capability-aware engine
    ({!Index.engine}); positions it returns are global backbone
    positions — translate with {!locate}. *)

type hit = {
  string_id : int;
  pos : int;      (** 0-based start within that string *)
}

val occurrences : t -> int array -> hit list
(** All occurrences of the pattern across all indexed strings, ordered
    by (id, position). *)

val contains : t -> string -> bool

val locate : t -> int -> hit
(** Translate a global 0-based backbone position to a per-string
    position. @raise Invalid_argument if the position falls on a
    separator or out of range. *)
