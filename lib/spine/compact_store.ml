(** The paper's Section 5 node layout: Link Table + Rib Tables.

    Every node owns one 6-byte Link Table (LT) entry — exactly the
    {LD/PTR, LEL} columns of the paper's Figure 5; only nodes with
    downstream edges (around 30 % of them, Table 4) own a row in one of
    the Rib Tables (RTs), segregated by fanout so that space is paid per
    edge actually present.  Numeric labels are 2 bytes with an overflow
    side table for the rare values above 65534 (Table 3 shows real
    genomes stay far below), and character labels are bit-packed
    ([payload_bits] per rib, 2 bits for DNA — the same coding as the
    vertebra labels).

    Layouts (little-endian):

    - LT entry (6 bytes): [payload u32][LEL u16].  When the node has no
      downstream edges the payload is the link destination (bit 31
      clear).  Otherwise bit 31 is set and the payload packs
      [table:2][fanout:5][extrib:1][row:23], and the link destination
      moves into the row's LD field — Figure 5's PTR case.
    - RT_k row: [LD u32] then k slots of [RD u32][PT u16], then
      [ceil(k * clbits / 8)] bytes of packed rib character labels, then
      [PRT u16].  Ribs occupy slots [0 .. ribs-1]; the extrib, which
      needs no character label (the paper: "a character label is not
      required for an extrib"), always occupies the LAST slot [k - 1].
      For DNA this gives 13/19/25/31-byte rows for RT1..RT4.
    - Numeric labels with value >= 0xFFFF store the sentinel 0xFFFF and
      the true value in the overflow side table, the robustness
      mechanism of Section 5.1.
    - Extrib anchors (the chain-attribution correction, see
      {!Store_sig.S.find_extrib}) live in a side table keyed per row.

    When a node's fanout outgrows its table the row migrates to the next
    table and the old row goes on a freelist — the node-movement cost
    the paper measured as negligible (reported via [space]).

    The storage logic is written once, in {!Core}, over the {!BYTES}
    byte-table abstraction: this module instantiates it with in-memory
    growable byte buffers (plus the [trace] callback whose replay drives
    the disk experiments), while {!Persistent} instantiates the same
    code over buffer-pool pages of a real file.

    The [trace] callback reports every logical record access with its
    structure id (0 = LT, 1-4 = RT1..RT4, 5 = side tables) and row
    index. *)

type trace = structure:int -> index:int -> write:bool -> unit

(** Byte-table abstraction the layout code is written against. *)
module type BYTES = sig
  type t

  val used : t -> int
  (** Bytes allocated so far. *)

  val alloc : t -> int -> int
  (** [alloc t n] reserves [n] more bytes, returning their offset. *)

  val get_u8 : t -> int -> int
  val set_u8 : t -> int -> int -> unit
  val get_u16 : t -> int -> int
  val set_u16 : t -> int -> int -> unit
  val get_u32 : t -> int -> int
  val set_u32 : t -> int -> int -> unit
end

(* growable in-memory little-endian byte table *)
module Btab = struct
  type t = {
    mutable data : Bytes.t;
    mutable len : int;         (* bytes in use *)
  }

  let create capacity = { data = Bytes.make (max capacity 8) '\000'; len = 0 }

  let used t = t.len

  let ensure t extra =
    let needed = t.len + extra in
    if needed > Bytes.length t.data then begin
      let cap = ref (Bytes.length t.data) in
      while !cap < needed do cap := !cap * 2 done;
      let ndata = Bytes.make !cap '\000' in
      Bytes.blit t.data 0 ndata 0 t.len;
      t.data <- ndata
    end

  let alloc t bytes =
    ensure t bytes;
    let off = t.len in
    t.len <- t.len + bytes;
    off

  let get_u8 t off = Char.code (Bytes.get t.data off)
  let set_u8 t off v = Bytes.set t.data off (Char.chr (v land 0xFF))
  let get_u16 t off = Bytes.get_uint16_le t.data off
  let set_u16 t off v = Bytes.set_uint16_le t.data off (v land 0xFFFF)
  let get_u32 t off = Int32.to_int (Bytes.get_int32_le t.data off) land 0xFFFF_FFFF
  let set_u32 t off v = Bytes.set_int32_le t.data off (Int32.of_int v)
end

let lt_entry_bytes = 6
let overflow_sentinel = 0xFFFF

(* layout constants derived from the alphabet, shared by every
   instantiation (and by the Disk trace router) *)
type layout = {
  slot_capacity : int array;
  row_bytes : int array;
  cl_area_off : int array;
  prt_off : int array;
  cl_bits : int;
}

let layout_of alphabet =
  (* σ - 1 ribs plus one extrib is the maximum fanout *)
  let mf = max 4 (Bioseq.Alphabet.size alphabet) in
  let slot_capacity = [| 1; 2; 3; mf |] in
  let cl_bits =
    let b = Bioseq.Alphabet.payload_bits alphabet in
    if b <= 4 then b else 8
  in
  let cl_area_off = Array.map (fun k -> 4 + (6 * k)) slot_capacity in
  let prt_off =
    Array.mapi
      (fun i k -> cl_area_off.(i) + (((k * cl_bits) + 7) / 8))
      slot_capacity
  in
  let row_bytes = Array.map (fun off -> off + 2) prt_off in
  { slot_capacity; row_bytes; cl_area_off; prt_off; cl_bits }

type space = {
  lt_bytes : int;
  rt_bytes : int;         (** live rows only *)
  rt_slack_bytes : int;   (** freelisted rows still occupying storage *)
  overflow_bytes : int;   (** overflow labels + extrib anchors *)
  string_bytes : int;     (** the bit-packed vertebra labels *)
  migrations : int;
}

module Core (B : BYTES) = struct
  type t = {
    seq : Bioseq.Packed_seq.t;
    lo : layout;
    lt : B.t;
    rts : B.t array;                 (* index 0..3 = RT1..RT4 *)
    freelist : int array;            (* per RT, head row + 1, 0 = none *)
    live_rows : int array;
    overflow : int Xutil.Int_tbl.t;  (* label-field key -> true value *)
    mutable overflow_count : int;
    anchors : int Xutil.Int_tbl.t;   (* row key -> extrib anchor *)
    mutable migrations : int;
    trace : trace option;
  }

  (* [make] wires up an instance over existing tables; [fresh] also
     allocates the root's LT entry. Restoring a persisted instance
     passes the saved side tables and counters back in. *)
  let make ?trace ?(freelist = [| 0; 0; 0; 0 |]) ?(live_rows = [| 0; 0; 0; 0 |])
      ?(overflow = Xutil.Int_tbl.create 16) ?(anchors = Xutil.Int_tbl.create 16)
      ?(migrations = 0) ~seq ~lt ~rts alphabet =
    { seq; lo = layout_of alphabet; lt; rts;
      freelist; live_rows; overflow;
      overflow_count = Xutil.Int_tbl.length overflow;
      anchors; migrations; trace }

  let init_root t = ignore (B.alloc t.lt lt_entry_bytes)

  (* The trace callback is the one opaque call on the query path; its
     domain-safety is the hook installer's obligation.  Post-build
     stores shared across domains either carry no hook ([trace = None],
     the default) or the in-tree disk router, whose effects serialise
     through Buffer_pool's reentrant lock and the per-domain Trace
     state. *)
  let[@spine.domain_safe
       "trace hooks must be domain-safe by contract; in-tree hooks \
        (Trace_router over a locked Buffer_pool, per-domain Trace) are"]
      touch t ~structure ~index ~write =
    match t.trace with
    | None -> ()
    | Some f -> f ~structure ~index ~write

  let alphabet t = Bioseq.Packed_seq.alphabet t.seq
  let length t = Bioseq.Packed_seq.length t.seq
  let sequence t = t.seq
  let char_at t i = Bioseq.Packed_seq.get t.seq i

  let append_char t c =
    Bioseq.Packed_seq.append t.seq c;
    let node = length t in
    let off = B.alloc t.lt lt_entry_bytes in
    assert (off = node * lt_entry_bytes);
    touch t ~structure:0 ~index:node ~write:true

  (* --- LT payload packing ---
     bit 31: has-row; if set: bits 30-29 table, 28-24 fanout,
     23 extrib-present, 22-0 row index. Otherwise bits 30-0 = dest. *)

  let lt_off node = node * lt_entry_bytes
  let lt_payload t node = B.get_u32 t.lt (lt_off node)
  let set_lt_payload t node v = B.set_u32 t.lt (lt_off node) v

  let ptr_table p = (p lsr 29) land 3
  let ptr_fanout p = (p lsr 24) land 0x1F
  let ptr_extrib p = (p lsr 23) land 1 = 1
  let ptr_row p = p land 0x7F_FFFF

  let pack_ptr ~table ~fanout ~extrib ~row =
    assert (row < 0x80_0000);
    0x8000_0000 lor (table lsl 29) lor (fanout lsl 24)
    lor ((if extrib then 1 else 0) lsl 23) lor row

  (* --- numeric labels with overflow --- *)

  let read_label t raw key =
    if raw = overflow_sentinel then begin
      touch t ~structure:5 ~index:0 ~write:false;
      Xutil.Int_tbl.find t.overflow key
    end
    else raw

  let write_label t set key v =
    if v >= overflow_sentinel then begin
      set overflow_sentinel;
      if not (Xutil.Int_tbl.mem t.overflow key) then
        t.overflow_count <- t.overflow_count + 1;
      Xutil.Int_tbl.replace t.overflow key v;
      touch t ~structure:5 ~index:0 ~write:true
    end
    else begin
      if Xutil.Int_tbl.mem t.overflow key then begin
        Xutil.Int_tbl.remove t.overflow key;
        t.overflow_count <- t.overflow_count - 1
      end;
      set v
    end

  (* Unique keys per logical label field: LT LELs even, RT fields odd.
     Slots 0..59 are rib/extrib PTs, 62 the anchor, 63 the PRT. *)
  let lt_lel_key node = node * 2
  let rt_label_key ~table ~row ~slot =
    ((((row * 64) + slot) * 4) + table) * 2 + 1

  let lt_lel t node =
    read_label t (B.get_u16 t.lt (lt_off node + 4)) (lt_lel_key node)

  let set_lt_lel t node v =
    write_label t (B.set_u16 t.lt (lt_off node + 4)) (lt_lel_key node) v

  (* --- RT rows --- *)

  let row_off t table row = row * t.lo.row_bytes.(table)
  let slot_off t table row slot = row_off t table row + 4 + (6 * slot)

  let row_ld t table row = B.get_u32 t.rts.(table) (row_off t table row)
  let set_row_ld t table row v =
    B.set_u32 t.rts.(table) (row_off t table row) v

  let slot_rd t table row slot =
    B.get_u32 t.rts.(table) (slot_off t table row slot)

  let set_slot_rd t table row slot v =
    B.set_u32 t.rts.(table) (slot_off t table row slot) v

  let slot_pt t table row slot =
    read_label t
      (B.get_u16 t.rts.(table) (slot_off t table row slot + 4))
      (rt_label_key ~table ~row ~slot)

  let set_slot_pt t table row slot v =
    write_label t
      (B.set_u16 t.rts.(table) (slot_off t table row slot + 4))
      (rt_label_key ~table ~row ~slot) v

  (* packed rib character labels *)
  let slot_cl t table row slot =
    let base_bit = slot * t.lo.cl_bits in
    let byte = t.lo.cl_area_off.(table) + (base_bit / 8) in
    let shift = base_bit mod 8 in
    let v = B.get_u8 t.rts.(table) (row_off t table row + byte) in
    (v lsr shift) land ((1 lsl t.lo.cl_bits) - 1)

  let set_slot_cl t table row slot cl =
    let base_bit = slot * t.lo.cl_bits in
    let byte = t.lo.cl_area_off.(table) + (base_bit / 8) in
    let shift = base_bit mod 8 in
    let mask = ((1 lsl t.lo.cl_bits) - 1) lsl shift in
    let off = row_off t table row + byte in
    let v = B.get_u8 t.rts.(table) off in
    B.set_u8 t.rts.(table) off
      ((v land lnot mask) lor ((cl lsl shift) land mask))

  let row_prt t table row =
    read_label t
      (B.get_u16 t.rts.(table) (row_off t table row + t.lo.prt_off.(table)))
      (rt_label_key ~table ~row ~slot:63)

  let set_row_prt t table row v =
    write_label t
      (B.set_u16 t.rts.(table) (row_off t table row + t.lo.prt_off.(table)))
      (rt_label_key ~table ~row ~slot:63) v

  let anchor_key ~table ~row = rt_label_key ~table ~row ~slot:62

  let row_anchor t table row =
    touch t ~structure:5 ~index:0 ~write:false;
    Xutil.Int_tbl.find t.anchors (anchor_key ~table ~row)

  let set_row_anchor t table row v =
    touch t ~structure:5 ~index:0 ~write:true;
    Xutil.Int_tbl.replace t.anchors (anchor_key ~table ~row) v

  let alloc_row t table =
    t.live_rows.(table) <- t.live_rows.(table) + 1;
    if t.freelist.(table) > 0 then begin
      let row = t.freelist.(table) - 1 in
      t.freelist.(table) <- B.get_u32 t.rts.(table) (row_off t table row);
      row
    end
    else begin
      let off = B.alloc t.rts.(table) t.lo.row_bytes.(table) in
      off / t.lo.row_bytes.(table)
    end

  let free_row t table row =
    t.live_rows.(table) <- t.live_rows.(table) - 1;
    (* drop side-table entries still keyed to this row *)
    for slot = 0 to t.lo.slot_capacity.(table) - 1 do
      let key = rt_label_key ~table ~row ~slot in
      if Xutil.Int_tbl.mem t.overflow key then begin
        Xutil.Int_tbl.remove t.overflow key;
        t.overflow_count <- t.overflow_count - 1
      end
    done;
    let prt_key = rt_label_key ~table ~row ~slot:63 in
    if Xutil.Int_tbl.mem t.overflow prt_key then begin
      Xutil.Int_tbl.remove t.overflow prt_key;
      t.overflow_count <- t.overflow_count - 1
    end;
    Xutil.Int_tbl.remove t.anchors (anchor_key ~table ~row);
    B.set_u32 t.rts.(table) (row_off t table row) t.freelist.(table);
    t.freelist.(table) <- row + 1

  (* --- links --- *)

  let link_dest t node =
    touch t ~structure:0 ~index:node ~write:false;
    let p = lt_payload t node in
    if p land 0x8000_0000 = 0 then p
    else begin
      let table = ptr_table p and row = ptr_row p in
      touch t ~structure:(1 + table) ~index:row ~write:false;
      row_ld t table row
    end

  let link_lel t node =
    touch t ~structure:0 ~index:node ~write:false;
    lt_lel t node

  let set_link t node ~dest ~lel =
    touch t ~structure:0 ~index:node ~write:true;
    set_lt_lel t node lel;
    let p = lt_payload t node in
    if p land 0x8000_0000 = 0 then set_lt_payload t node dest
    else begin
      let table = ptr_table p and row = ptr_row p in
      touch t ~structure:(1 + table) ~index:row ~write:true;
      set_row_ld t table row dest
    end

  (* --- ribs and extribs --- *)

  (* ribs occupy slots 0 .. ribs-1; the extrib, if present, slot k-1 *)
  let rib_count p = ptr_fanout p - (if ptr_extrib p then 1 else 0)

  let find_rib t node code =
    touch t ~structure:0 ~index:node ~write:false;
    let p = lt_payload t node in
    if p land 0x8000_0000 = 0 then None
    else begin
      let table = ptr_table p and row = ptr_row p in
      touch t ~structure:(1 + table) ~index:row ~write:false;
      let ribs = rib_count p in
      let rec scan slot =
        if slot >= ribs then None
        else if slot_cl t table row slot = code then
          Some (slot_rd t table row slot, slot_pt t table row slot)
        else scan (slot + 1)
      in
      scan 0
    end

  let find_extrib t node =
    touch t ~structure:0 ~index:node ~write:false;
    let p = lt_payload t node in
    if p land 0x8000_0000 = 0 || not (ptr_extrib p) then None
    else begin
      let table = ptr_table p and row = ptr_row p in
      touch t ~structure:(1 + table) ~index:row ~write:false;
      let slot = t.lo.slot_capacity.(table) - 1 in
      Some (slot_rd t table row slot, slot_pt t table row slot,
            row_prt t table row, row_anchor t table row)
    end

  let table_for_fanout t f =
    let rec go table =
      if table >= 3 || t.lo.slot_capacity.(table) >= f then table
      else go (table + 1)
    in
    go 0

  (* Materialise a row for [node] (or migrate its current one) able to
     hold one more edge; returns (table, row) of the destination row
     with the LT payload already updated. *)
  let grow_row t node ~adding_extrib =
    let p = lt_payload t node in
    if p land 0x8000_0000 = 0 then begin
      let table = table_for_fanout t 1 in
      let row = alloc_row t table in
      touch t ~structure:(1 + table) ~index:row ~write:true;
      set_row_ld t table row p;   (* the link destination moves here *)
      set_lt_payload t node
        (pack_ptr ~table ~fanout:1 ~extrib:adding_extrib ~row);
      touch t ~structure:0 ~index:node ~write:true;
      (table, row)
    end
    else begin
      let table = ptr_table p and row = ptr_row p in
      let fanout = ptr_fanout p in
      let extrib = ptr_extrib p in
      assert (not (extrib && adding_extrib));
      if fanout < t.lo.slot_capacity.(table) then begin
        set_lt_payload t node
          (pack_ptr ~table ~fanout:(fanout + 1)
             ~extrib:(extrib || adding_extrib) ~row);
        touch t ~structure:(1 + table) ~index:row ~write:true;
        touch t ~structure:0 ~index:node ~write:true;
        (table, row)
      end
      else begin
        (* migrate to the table serving fanout + 1 *)
        let ntable = table_for_fanout t (fanout + 1) in
        assert (ntable > table);
        let nrow = alloc_row t ntable in
        t.migrations <- t.migrations + 1;
        touch t ~structure:(1 + table) ~index:row ~write:false;
        touch t ~structure:(1 + ntable) ~index:nrow ~write:true;
        set_row_ld t ntable nrow (row_ld t table row);
        let ribs = rib_count p in
        for slot = 0 to ribs - 1 do
          set_slot_rd t ntable nrow slot (slot_rd t table row slot);
          set_slot_pt t ntable nrow slot (slot_pt t table row slot);
          set_slot_cl t ntable nrow slot (slot_cl t table row slot)
        done;
        if extrib then begin
          let oslot = t.lo.slot_capacity.(table) - 1 in
          let nslot = t.lo.slot_capacity.(ntable) - 1 in
          set_slot_rd t ntable nrow nslot (slot_rd t table row oslot);
          set_slot_pt t ntable nrow nslot (slot_pt t table row oslot);
          set_row_prt t ntable nrow (row_prt t table row);
          set_row_anchor t ntable nrow (row_anchor t table row)
        end;
        free_row t table row;
        set_lt_payload t node
          (pack_ptr ~table:ntable ~fanout:(fanout + 1)
             ~extrib:(extrib || adding_extrib) ~row:nrow);
        touch t ~structure:0 ~index:node ~write:true;
        (ntable, nrow)
      end
    end

  let add_rib t node ~code ~dest ~pt =
    let table, row = grow_row t node ~adding_extrib:false in
    (* the new rib takes the next free rib slot *)
    let slot = rib_count (lt_payload t node) - 1 in
    set_slot_rd t table row slot dest;
    set_slot_pt t table row slot pt;
    set_slot_cl t table row slot code

  let add_extrib t node ~dest ~pt ~prt ~anchor =
    let table, row = grow_row t node ~adding_extrib:true in
    let slot = t.lo.slot_capacity.(table) - 1 in
    set_slot_rd t table row slot dest;
    set_slot_pt t table row slot pt;
    set_row_prt t table row prt;
    set_row_anchor t table row anchor

  let fold_ribs t node ~init ~f =
    let p = lt_payload t node in
    if p land 0x8000_0000 = 0 then init
    else begin
      let table = ptr_table p and row = ptr_row p in
      let ribs = rib_count p in
      let acc = ref init in
      for slot = 0 to ribs - 1 do
        acc :=
          f !acc (slot_cl t table row slot) (slot_rd t table row slot)
            (slot_pt t table row slot)
      done;
      !acc
    end

  (* --- accounting --- *)

  let space t =
    let live = ref 0 and total = ref 0 in
    Array.iteri
      (fun table rows ->
        live := !live + (rows * t.lo.row_bytes.(table));
        total := !total + B.used t.rts.(table))
      t.live_rows;
    { lt_bytes = B.used t.lt;
      rt_bytes = !live;
      rt_slack_bytes = !total - !live;
      (* 8 bytes per overflow entry and per extrib anchor *)
      overflow_bytes = (t.overflow_count + Xutil.Int_tbl.length t.anchors) * 8;
      string_bytes = Bioseq.Packed_seq.packed_byte_length t.seq;
      migrations = t.migrations }

  let bytes_per_char t =
    let s = space t in
    if length t = 0 then 0.0
    else
      float_of_int
        (s.lt_bytes + s.rt_bytes + s.overflow_bytes + s.string_bytes)
      /. float_of_int (length t)

  let live_rows t table = t.live_rows.(table)
  let row_bytes t table = t.lo.row_bytes.(table)
  let rows_allocated t table = B.used t.rts.(table) / t.lo.row_bytes.(table)
  let overflow_count t = t.overflow_count

  (* The Section 5 layout maps cleanly onto the component vocabulary:
     the bit-packed character labels are the vertebrae (destinations
     are implicit), the LT is the links, the RT live rows are the ribs
     (their PRT area carries the extrib fields), and the overflow /
     anchor side tables are extrib bookkeeping. *)
  let space_components t =
    let s = space t in
    [ ("vertebrae", s.string_bytes);
      ("links", s.lt_bytes);
      ("ribs", s.rt_bytes);
      ("rib_slack", s.rt_slack_bytes);
      ("extribs", s.overflow_bytes) ]
end

include Core (Btab)

let create ?(capacity = 1024) ?trace alphabet =
  let lo = layout_of alphabet in
  let t =
    make ?trace
      ~seq:(Bioseq.Packed_seq.create ~capacity alphabet)
      ~lt:(Btab.create (capacity * lt_entry_bytes))
      ~rts:(Array.map (fun b -> Btab.create (64 * b)) lo.row_bytes)
      alphabet
  in
  init_root t;
  t
