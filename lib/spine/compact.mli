(** The SPINE index in the paper's optimised Section 5 layout.

    Functionally identical to {!Index} (the test suite enforces search
    parity), but stored as the paper's Link Table + Rib Tables with
    2-byte labels and an overflow side table.  This is the
    representation whose space the paper reports ("less than 12 bytes
    per indexed character") and the one the disk-resident experiments
    trace through a buffer pool.  The query surface is the shared
    {!Engine.Api} instantiated over {!Compact_store}. *)

type t

type trace = Compact_store.trace

(** {2 Engine} *)

val caps_of : t -> Engine.caps
(** Backend "compact"; [traced] reflects whether the store was created
    with an access-trace callback. *)

val engine : t -> Engine.t
(** Pack as a capability-aware engine.  Build once and reuse. *)

(** {2 Construction} *)

val create : ?capacity:int -> ?trace:trace -> Bioseq.Alphabet.t -> t
val append : t -> int -> unit
val append_string : t -> string -> unit
val of_seq : ?trace:trace -> Bioseq.Packed_seq.t -> t
val of_string : ?trace:trace -> Bioseq.Alphabet.t -> string -> t

val alphabet : t -> Bioseq.Alphabet.t
val length : t -> int
val node_count : t -> int

(** {2 Search} *)

val contains : t -> string -> bool
val contains_codes : t -> int array -> bool
val find_first : t -> int array -> int option
val first_occurrence : t -> int array -> int option
val occurrences : t -> int array -> int list
val end_nodes : t -> int array -> int list

val occurrences_batch : t -> (int * int) array -> Xutil.Int_vec.t array
(** The raw deferred-scan machinery: given [(first-occurrence end node,
    length)] pairs, resolve every occurrence of all of them in one
    sequential backbone pass, one ascending end-node buffer per
    pattern. *)

val occurrences_many : t -> int array list -> int list array
(** Dictionary search with ONE shared backbone scan; see
    {!Index.occurrences_many}. *)

type match_stats = Matcher.stats = {
  nodes_checked : int;
  suffixes_checked : int;
}

type mmatch = Matcher.mmatch = {
  query_end : int;
  length : int;
  data_ends : int list;
}

val matching_statistics : t -> Bioseq.Packed_seq.t -> int array * match_stats

val maximal_matches :
  ?immediate:bool -> t -> threshold:int -> Bioseq.Packed_seq.t ->
  mmatch list * match_stats

type label_maxima = Stats.label_maxima = {
  max_pt : int;
  max_lel : int;
  max_prt : int;
}

val label_maxima : t -> label_maxima
val rib_distribution : t -> int array
val link_histogram : t -> buckets:int -> int array

(** {2 Cursors} *)

module Cursor : Cursor.S with type store = t
(** Incremental valid-path cursors over the packed layout (the shared
    {!Cursor.Make}); {!Engine.cursor} wraps the same machinery behind
    the uniform handle. *)

(** {2 Space accounting (Section 5)} *)

type space = Compact_store.space = {
  lt_bytes : int;
  rt_bytes : int;
  rt_slack_bytes : int;
  overflow_bytes : int;
  string_bytes : int;
  migrations : int;
}

val space : t -> space

val bytes_per_char : t -> float
(** Total live bytes per indexed character; the paper's headline
    "less than 12 bytes" metric. *)

val live_rows : t -> int -> int
(** Live rows in RT1..RT4 ([0..3]). *)

val row_bytes : t -> int -> int
val overflow_count : t -> int

val store : t -> Compact_store.t
