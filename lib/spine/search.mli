(** Valid-path search over a SPINE index (Section 4 of the paper).

    A path is valid when it starts at the root and every rib/extrib it
    takes satisfies the pathlength-threshold constraint; valid paths
    spell exactly the substrings of the data string, and the node a
    valid path ends on is the end of the substring's {e first}
    occurrence.  Remaining occurrences are recovered with the paper's
    target-node-buffer scan: one sequential pass over the backbone,
    admitting every node whose link points into the buffer with
    sufficient LEL. *)

(** Traversal telemetry, one counter per edge family.  [c_link_hops] is
    shared with the matcher's backward-link walk and the cursor's
    suffix-drop loop. *)

val c_vertebra_hops : Telemetry.counter
val c_rib_hops : Telemetry.counter
val c_extrib_hops : Telemetry.counter
val c_link_hops : Telemetry.counter
val c_scan_nodes : Telemetry.counter
val c_occurrences : Telemetry.counter

val c_word_steps : Telemetry.counter
(** Whole-word comparisons on vertebra runs (each covering up to
    [Packed_seq.codes_per_word] characters); [c_word_steps] far below
    [c_vertebra_hops] is the packed-scan win being measured. *)

val c_scalar_steps : Telemetry.counter
(** Per-character fallback comparisons on vertebra runs (span-boundary
    tails, or whole spans when the pattern cannot pack at the text's
    cell width). *)

val trace_step : string -> node:int -> dest:int -> unit
(** Record one edge crossing as a trace instant ([step.vertebra],
    [step.rib], [step.extrib] or [step.link]); shared with the matcher
    and the cursor.  Callers guard with {!Trace.on} so the disabled
    path allocates nothing. *)

(** The search algorithm surface over one store type; [Make] produces
    it for any {!Store_sig.S} implementation.  Naming the signature
    lets {!Engine} pack an instantiated search module together with its
    store as a first-class backend. *)
module type S = sig
  type store

  val step : store -> int -> int -> int -> int
  (** [step t node pl c]: one forward step from [node] with pathlength
      [pl] on character [c].  Returns the destination node, or [-1]
      when no valid edge exists. *)

  val extend :
    store -> node:int -> pl:int -> Bioseq.Packed_seq.Pattern.t -> pos:int ->
    int * int
  (** [extend t ~node ~pl p ~pos] descends from [node] (pathlength
      [pl]) consuming pattern codes from [pos]: vertebra runs extend
      word-at-a-time against the packed text row, with one scalar
      {!step} at each non-vertebra boundary (rib/extrib transitions).
      Returns the landing node and the number of codes consumed. *)

  val find_first_pattern : store -> Bioseq.Packed_seq.Pattern.t -> int option
  (** End node of the first occurrence of the pre-packed pattern, or
      [None].  The codes-based entry points below pack once and call
      this. *)

  val contains_pattern : store -> Bioseq.Packed_seq.Pattern.t -> bool

  val end_nodes_pattern : store -> Bioseq.Packed_seq.Pattern.t -> int list
  (** All end nodes of the pattern, ascending. *)

  val occurrences_pattern : store -> Bioseq.Packed_seq.Pattern.t -> int list
  (** 0-based start positions, ascending. *)

  val find_first : store -> int array -> int option
  (** End node of the first occurrence of the code array, or [None]. *)

  val contains_codes : store -> int array -> bool

  val encode : store -> string -> int array option
  (** [None] if any character is outside the store's alphabet. *)

  val contains : store -> string -> bool

  val occurrences_batch : store -> (int * int) array -> Xutil.Int_vec.t array
  (** [occurrences_batch t firsts] resolves every occurrence of several
      patterns — given as [(first-occurrence end node, length)] pairs —
      in one deferred sequential backbone scan, returning one ascending
      end-node buffer per pattern. *)

  val end_nodes : store -> int array -> int list
  (** All end nodes of the pattern, ascending (hashtable-backed buffer
      membership). *)

  val end_nodes_binary : store -> int array -> int list
  (** Faithful single-pattern variant testing buffer membership by
      binary search on the sorted target-node buffer, exactly as
      described in the paper; the ablation bench compares the two. *)

  val occurrences : store -> int array -> int list
  (** 0-based start positions, ascending. *)

  val first_occurrence : store -> int array -> int option

  val occurrences_many : store -> int array list -> int list array
  (** Dictionary search: all occurrences of every pattern, resolved
      with ONE shared backbone scan (the paper's deferred batching,
      Section 4).  Result [i] holds the ascending start positions of
      pattern [i] (empty when absent). *)
end

module Make (St : Store_sig.S) : S with type store = St.t
