(** Online SPINE construction (Section 3 of the paper).

    One {!Make.append} call per data character.  The link chain of the
    new node's parent is traversed upstream; at each visited node a rib
    is created unless a forward edge for the new character already
    exists, in which case the traversal stops and the new node's link is
    installed according to the paper's four cases:

    - CASE 1 (vertebra found): link to the vertebra's destination,
      LEL = last traversed LEL + 1;
    - CASE 2 (rib found, threshold passes): link to the rib destination,
      LEL = last traversed LEL + 1;
    - CASE 3 (no edge): create a rib to the tail with PT = last
      traversed LEL; on reaching the root, link the tail to the root
      with LEL 0;
    - CASE 4 (rib found, threshold fails): walk the rib's extrib chain;
      link to the first sibling extrib with sufficient PT, or append a
      fresh extrib at the end of the chain and link to the destination
      of the last same-PRT edge traversed.

    The hand-validated construction trace for the paper's example string
    [aaccacaaca] (Figure 3) is enforced by the test suite. *)

(* Construction telemetry: CASE frequencies (Section 3), edge-creation
   counts (the paper's Table 2/space accounting inputs) and the
   upstream link-chain length per appended character.  Shared across
   every store instantiation — the registry is process-global. *)
let c_case1 = Telemetry.counter "build.case1"
let c_case2 = Telemetry.counter "build.case2"
let c_case3 = Telemetry.counter "build.case3"
let c_case4 = Telemetry.counter "build.case4"
let c_ribs = Telemetry.counter "build.ribs_created"
let c_extribs = Telemetry.counter "build.extribs_created"
let c_links = Telemetry.counter "build.links_created"
let h_upstream = Telemetry.histogram "build.upstream_hops"

(* Trace events mirror the counters but keep the per-step context the
   aggregates lose: which node each CASE fired at and where every new
   edge went, inside the enclosing operation's timeline. *)
let ev_case = function
  | 1 -> "build.case1"
  | 2 -> "build.case2"
  | 3 -> "build.case3"
  | _ -> "build.case4"

let trace_case k ~node ~tail =
  Trace.instant (ev_case k)
    [ Trace.Int ("node", node); Trace.Int ("tail", tail) ]

module Make (S : Store_sig.S) = struct
  (* CASE 4. [lel] is the LEL of the last traversed link: the length of
     the longest suffix terminating at the node whose rib [rib_dest]/
     [rib_pt] failed the threshold test (rib_pt < lel). *)
  let handle_extrib t tail ~rib_dest ~rib_pt ~lel =
    let last_same_prt_dest = ref rib_dest in
    let last_same_prt_pt = ref rib_pt in
    let cur = ref rib_dest in
    let finished = ref false in
    while not !finished do
      match S.find_extrib t !cur with
      | None ->
        (* chain exhausted: extend it to the tail and record the new
           LET-suffix, which is the extension of the longest previously
           extended suffix (PT of the last same-PRT edge) *)
        S.add_extrib t !cur ~dest:tail ~pt:lel ~prt:rib_pt ~anchor:rib_dest;
        Telemetry.incr c_extribs;
        if Trace.on () then
          Trace.instant "build.extrib"
            [ Trace.Int ("node", !cur); Trace.Int ("dest", tail);
              Trace.Int ("pt", lel); Trace.Int ("prt", rib_pt) ];
        S.set_link t tail ~dest:!last_same_prt_dest ~lel:(!last_same_prt_pt + 1);
        Telemetry.incr c_links;
        finished := true
      | Some (edest, ept, eprt, eanchor) ->
        let sibling = eprt = rib_pt && eanchor = rib_dest in
        if sibling && ept >= lel then begin
          (* a sibling extrib already extends this suffix length *)
          S.set_link t tail ~dest:edest ~lel:(lel + 1);
          Telemetry.incr c_links;
          finished := true
        end
        else begin
          if sibling then begin
            last_same_prt_dest := edest;
            last_same_prt_pt := ept
          end;
          cur := edest
        end
    done

  let append t c =
    S.append_char t c;
    let tail = S.length t in
    if tail = 1 then begin
      S.set_link t 1 ~dest:0 ~lel:0;
      Telemetry.incr c_links
    end
    else begin
      let parent = tail - 1 in
      let m = ref (S.link_dest t parent) in
      let lel = ref (S.link_lel t parent) in
      let finished = ref false in
      let hops = ref 0 in
      while not !finished do
        let mv = !m in
        hops := !hops + 1;
        if S.char_at t mv = c then begin
          (* CASE 1: vertebra out of [mv] carries [c] *)
          Telemetry.incr c_case1;
          if Trace.on () then trace_case 1 ~node:mv ~tail;
          S.set_link t tail ~dest:(mv + 1) ~lel:(!lel + 1);
          Telemetry.incr c_links;
          finished := true
        end
        else
          match S.find_rib t mv c with
          | Some (dest, pt) ->
            if pt >= !lel then begin
              (* CASE 2 *)
              Telemetry.incr c_case2;
              if Trace.on () then trace_case 2 ~node:mv ~tail;
              S.set_link t tail ~dest ~lel:(!lel + 1);
              Telemetry.incr c_links
            end
            else begin
              (* CASE 4 *)
              Telemetry.incr c_case4;
              if Trace.on () then trace_case 4 ~node:mv ~tail;
              handle_extrib t tail ~rib_dest:dest ~rib_pt:pt ~lel:!lel
            end;
            finished := true
          | None ->
            (* CASE 3 *)
            Telemetry.incr c_case3;
            if Trace.on () then begin
              trace_case 3 ~node:mv ~tail;
              Trace.instant "build.rib"
                [ Trace.Int ("node", mv); Trace.Int ("dest", tail);
                  Trace.Int ("pt", !lel) ]
            end;
            S.add_rib t mv ~code:c ~dest:tail ~pt:!lel;
            Telemetry.incr c_ribs;
            if mv = 0 then begin
              S.set_link t tail ~dest:0 ~lel:0;
              Telemetry.incr c_links;
              finished := true
            end
            else begin
              lel := S.link_lel t mv;
              m := S.link_dest t mv
            end
      done;
      Telemetry.observe h_upstream !hops
    end

  let append_seq t seq =
    Bioseq.Packed_seq.iteri seq ~f:(fun _ code -> append t code)

  let append_string t s =
    String.iter
      (fun ch -> append t (Bioseq.Alphabet.encode (S.alphabet t) ch))
      s
end
