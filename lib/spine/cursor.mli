(** Incremental valid-path cursor over a SPINE index.

    The paper closes (Section 8) by arguing that SPINE's linearity makes
    it "more amenable for integration with database engines"; this
    module is that integration surface: a small stateful iterator that a
    query operator can drive character by character — the way a LIKE
    predicate or a streaming tokenizer consumes input — without
    re-walking from the root.

    A cursor always represents a {e match in progress}: the window of
    characters accepted so far, positioned at its termination node (the
    end of its first occurrence in the indexed string). [advance]
    extends the window on the right by one character; [drop_front]
    shrinks it on the left (following backward links), which is exactly
    the state transition streaming matchers need on a mismatch.

    The cursor is written once, as {!Make} over {!Store_sig.S}, so
    every storage backend — fast, compact, persistent, disk — supports
    incremental cursors; {!Engine.cursor} packages them uniformly.  The
    module-level values below are the historical convenience surface
    over the in-memory fast store ({!Index.t} is transparently equal to
    {!Fast_store.t}). *)

(** The cursor surface over one store type. *)
module type S = sig
  type store
  type t

  val create : store -> t
  (** A cursor for the empty match, at the root. *)

  val reset : t -> unit

  val advance : t -> int -> bool
  (** [advance c code] tries to extend the current match by one
      character. On success the cursor moves and [true] is returned; on
      failure the cursor is unchanged. *)

  val advance_char : t -> char -> bool
  (** {!advance} with alphabet encoding; [false] for characters outside
      the alphabet. *)

  val advance_pattern : t -> Bioseq.Packed_seq.Pattern.t -> int
  (** Extend the current match by as many of the pattern's codes as
      form valid-path steps, comparing vertebra runs word-at-a-time
      against the packed text row.  Returns the number of codes
      consumed; a result short of the pattern length means the walk got
      stuck (the cursor keeps the partial extension). *)

  val drop_front : t -> unit
  (** Remove the first character of the current match, repositioning at
      the termination node of the remaining suffix.
      @raise Invalid_argument on the empty match. *)

  val longest_extension : t -> int -> unit
  (** [longest_extension c code]: the streaming-matcher step — shrink
      the match from the front just enough (possibly to empty) so that
      it can be extended by [code], then extend if possible. Equivalent
      to repeated {!drop_front} + {!advance}, but takes the same
      shortcuts as {!Matcher} (rib thresholds at the current node, then
      link hops). After the call the cursor holds the longest suffix of
      (previous match + character) present in the data. *)

  val length : t -> int
  (** Characters currently matched. *)

  val node : t -> int
  (** Termination node: end of the first occurrence of the current
      match; [0] for the empty match. *)

  val first_occurrence : t -> int option
  (** Start position of the first occurrence, [None] for the empty
      match. *)

  val occurrences : t -> int list
  (** Start positions of all occurrences of the current match
      (a backbone scan; intended for when the driver decides the match
      is final). *)
end

module Make (St : Store_sig.S) : S with type store = St.t

include S with type store := Fast_store.t
