(* Engine-level resilience (see resilient.mli): per-query deadlines,
   bounded retry with exponential backoff + deterministic jitter, and a
   circuit breaker with explicit degraded mode.  Every decision that is
   not a clock reading is a pure function of (config, seed, outcome
   sequence), so a scenario run is replayable. *)

let c_calls = Telemetry.counter "resilience.calls"
let c_retries = Telemetry.counter "resilience.retries"
let c_timeouts = Telemetry.counter "resilience.timeouts"
let c_shed = Telemetry.counter "resilience.shed"
let c_failures = Telemetry.counter "resilience.failures"
let c_trips = Telemetry.counter "resilience.breaker_trips"
let c_recoveries = Telemetry.counter "resilience.recoveries"
let g_state = Telemetry.gauge "resilience.breaker_state"

type breaker_state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let state_code = function Closed -> 0.0 | Open -> 1.0 | Half_open -> 2.0

type config = {
  deadline_ns : int option;
  max_attempts : int;
  backoff_base_ns : int;
  backoff_max_ns : int;
  breaker_failures : int;
  breaker_cooldown_ns : int;
  breaker_probes : int;
  seed : int;
}

let default_config =
  { deadline_ns = Some 1_000_000_000;
    max_attempts = 4;
    backoff_base_ns = 1_000_000;
    backoff_max_ns = 100_000_000;
    breaker_failures = 5;
    breaker_cooldown_ns = 200_000_000;
    breaker_probes = 3;
    seed = 1 }

type counts = {
  calls : int;
  completed : int;
  retries : int;
  timeouts : int;
  shed : int;
  failures : int;
  breaker_trips : int;
  recoveries : int;
}

type t = {
  engine : Engine.t;
  config : config;
  clock : unit -> int;
  sleep_ns : int -> unit;
  (* breaker state and the local counter mirrors are shared mutable
     data; every access goes through [locked] so one wrapper can guard
     an engine queried from parallel domains *)
  lock : Mutex.t;
  mutable rng : int64;
  mutable state : breaker_state;
  mutable opened_at : int;
  mutable consecutive_failures : int;
  mutable probe_successes : int;
  mutable n_calls : int;
  mutable n_completed : int;
  mutable n_retries : int;
  mutable n_timeouts : int;
  mutable n_shed : int;
  mutable n_failures : int;
  mutable n_trips : int;
  mutable n_recoveries : int;
}

let create ?(clock = Xutil.Stopwatch.now_ns)
    ?(sleep_ns = fun ns -> Unix.sleepf (float_of_int ns /. 1e9))
    ?(config = default_config) engine =
  if config.max_attempts < 1 then
    invalid_arg "Resilient.create: max_attempts < 1";
  Telemetry.set g_state (state_code Closed);
  { engine; config; clock; sleep_ns;
    lock = Mutex.create ();
    rng = Int64.of_int (if config.seed = 0 then 0x9E3779B9 else config.seed);
    state = Closed; opened_at = 0;
    consecutive_failures = 0; probe_successes = 0;
    n_calls = 0; n_completed = 0; n_retries = 0; n_timeouts = 0;
    n_shed = 0; n_failures = 0; n_trips = 0; n_recoveries = 0 }

let engine t = t.engine
let config t = t.config

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let breaker_state t = locked t (fun () -> t.state)

let counts t =
  locked t (fun () ->
      { calls = t.n_calls; completed = t.n_completed; retries = t.n_retries;
        timeouts = t.n_timeouts; shed = t.n_shed; failures = t.n_failures;
        breaker_trips = t.n_trips; recoveries = t.n_recoveries })

(* SplitMix64, the same generator the fault and latency injectors use *)
let next_rand t =
  let z = Int64.add t.rng 0x9E3779B97F4A7C15L in
  t.rng <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.to_int
    (Int64.logand
       (Int64.logxor z (Int64.shift_right_logical z 31))
       0x3FFF_FFFF_FFFF_FFFFL)

(* full-jitter capped exponential: base * 2^(attempt-1) bounded by
   [backoff_max_ns], plus a deterministic uniform draw of up to half
   the capped delay on top *)
let backoff_delay t attempt =
  let shift = min 20 (attempt - 1) in
  let base = t.config.backoff_base_ns lsl shift in
  let capped = min t.config.backoff_max_ns (max 1 base) in
  capped + (next_rand t mod (capped / 2 + 1))

let set_state t s =
  t.state <- s;
  Telemetry.set g_state (state_code s)

let trip t =
  set_state t Open;
  t.opened_at <- t.clock ();
  t.probe_successes <- 0;
  t.n_trips <- t.n_trips + 1;
  Telemetry.incr c_trips;
  if Trace.on () then
    Trace.instant "resilience.breaker_trip"
      [ Trace.Int ("consecutive_failures", t.consecutive_failures) ]

(* Admission: closed and half-open let the request through; open sheds
   it typed until the cooldown elapses, then flips to half-open and
   lets probes through. *)
let admit t ~op =
  locked t (fun () ->
      t.n_calls <- t.n_calls + 1;
      Telemetry.incr c_calls;
      match t.state with
      | Closed | Half_open -> ()
      | Open ->
        if t.clock () - t.opened_at >= t.config.breaker_cooldown_ns then begin
          set_state t Half_open;
          t.probe_successes <- 0
        end
        else begin
          t.n_shed <- t.n_shed + 1;
          Telemetry.incr c_shed;
          if Trace.on () then
            Trace.instant "resilience.shed" [ Trace.Str ("op", op) ];
          Spine_error.overloaded ~op ~state:(state_name Open)
        end)

let record_success t =
  locked t (fun () ->
      t.n_completed <- t.n_completed + 1;
      match t.state with
      | Closed -> t.consecutive_failures <- 0
      | Half_open ->
        t.probe_successes <- t.probe_successes + 1;
        if t.probe_successes >= t.config.breaker_probes then begin
          set_state t Closed;
          t.consecutive_failures <- 0;
          t.n_recoveries <- t.n_recoveries + 1;
          Telemetry.incr c_recoveries;
          if Trace.on () then Trace.instant "resilience.breaker_close" []
        end
      | Open -> ())

let record_failure t ~timed_out =
  locked t (fun () ->
      if timed_out then begin
        t.n_timeouts <- t.n_timeouts + 1;
        Telemetry.incr c_timeouts
      end
      else begin
        t.n_failures <- t.n_failures + 1;
        Telemetry.incr c_failures
      end;
      match t.state with
      | Half_open -> trip t
      | Closed ->
        t.consecutive_failures <- t.consecutive_failures + 1;
        if t.consecutive_failures >= t.config.breaker_failures then trip t
      | Open -> ())

let call t ~op f =
  admit t ~op;
  let started = t.clock () in
  let abs_deadline =
    match t.config.deadline_ns with
    | None -> None
    | Some d -> Some (started + d)
  in
  let rec attempts n =
    try f t.engine with
    | Spine_error.Error (Spine_error.Io_failed { transient = true; _ })
      when n < t.config.max_attempts ->
      let delay = locked t (fun () -> backoff_delay t n) in
      (match abs_deadline with
       | Some dl when t.clock () + delay > dl ->
         (* the backoff would cross the deadline: declare the timeout
            now rather than sleeping into it *)
         (match t.config.deadline_ns with
          | Some d ->
            Spine_error.timeout ~op ~deadline_ns:d
              ~elapsed_ns:(t.clock () - started)
          | None -> assert false)
       | _ ->
         locked t (fun () -> t.n_retries <- t.n_retries + 1);
         Telemetry.incr c_retries;
         if Trace.on () then
           Trace.instant "resilience.retry"
             [ Trace.Str ("op", op); Trace.Int ("attempt", n);
               Trace.Int ("backoff_ns", delay) ];
         t.sleep_ns delay;
         attempts (n + 1))
  in
  let body () =
    match t.config.deadline_ns with
    | None -> attempts 1
    | Some d ->
      Pagestore.Deadline.with_deadline ~clock:t.clock ~op ~deadline_ns:d
        (fun () -> attempts 1)
  in
  match body () with
  | v ->
    record_success t;
    v
  | exception (Spine_error.Error (Spine_error.Timeout _) as e) ->
    record_failure t ~timed_out:true;
    raise e
  | exception (Spine_error.Error _ as e) ->
    record_failure t ~timed_out:false;
    raise e
