(** Engine-level resilience: deadlines, retry/backoff, circuit breaker.

    A {!t} wraps an {!Engine.t} with the degradation policy a query
    service needs under an adversarial environment (the chaos scenarios
    of [lib/scenario] certify it):

    - {e Deadline}: every {!call} arms a cooperative per-query deadline
      ({!Pagestore.Deadline}) checked in the paged hot paths and the
      latency injector's sleeps, so a query never hangs — it fails with
      a typed {!Spine_error.Error} ([Timeout]) and no partial result.
    - {e Retry}: transient [Io_failed] errors (the kind
      {!Pagestore.Fault_device} scripts and real devices produce) are
      retried up to [max_attempts] with capped exponential backoff plus
      a deterministic SplitMix64 full-jitter draw — a seeded fault
      storm replays the exact same backoff schedule.  A retry whose
      backoff would cross the deadline raises [Timeout] immediately.
    - {e Circuit breaker}: [breaker_failures] consecutive failures trip
      the breaker open; while open (and cooling down) every call is
      {e shed} with a typed [Overloaded] rejection without touching the
      engine.  After [breaker_cooldown_ns] the breaker half-opens and
      admits probes; [breaker_probes] consecutive successes close it
      (a failure re-trips immediately).

    Every outcome feeds the [resilience.*] telemetry family
    ([calls], [retries], [timeouts], [shed], [failures],
    [breaker_trips], [recoveries] counters and the [breaker_state]
    gauge: 0 closed / 1 open / 2 half-open) plus a per-instance
    {!counts} mirror that scenario expectations reconcile against
    per-query profiles.  State transitions are mutex-guarded, so one
    wrapper may guard an engine shared across domains. *)

type breaker_state = Closed | Open | Half_open

val state_name : breaker_state -> string
(** ["closed"] / ["open"] / ["half-open"] — also the [state] payload of
    [Overloaded] rejections. *)

type config = {
  deadline_ns : int option;  (** per-call budget; [None] = no deadline *)
  max_attempts : int;        (** total tries per call (>= 1) *)
  backoff_base_ns : int;     (** first retry's base delay *)
  backoff_max_ns : int;      (** cap on the exponential delay *)
  breaker_failures : int;    (** consecutive failures that trip open *)
  breaker_cooldown_ns : int; (** open time before half-open probing *)
  breaker_probes : int;      (** successes in half-open that close *)
  seed : int;                (** jitter determinism *)
}

val default_config : config
(** 1 s deadline, 4 attempts, 1 ms base / 100 ms cap backoff, trip at
    5 consecutive failures, 200 ms cooldown, 3 probes, seed 1. *)

type t

val create :
  ?clock:(unit -> int) -> ?sleep_ns:(int -> unit) -> ?config:config ->
  Engine.t -> t
(** [clock] (default {!Xutil.Stopwatch.now_ns}) and [sleep_ns] (default
    [Unix.sleepf]) exist so tests drive deadlines, backoff and cooldown
    through a virtual clock.
    @raise Invalid_argument when [config.max_attempts < 1]. *)

val engine : t -> Engine.t
val config : t -> config

val call : t -> op:string -> (Engine.t -> 'a) -> 'a
(** [call t ~op f] runs [f] on the wrapped engine under the full
    policy.  [op] names the operation in errors, traces and telemetry.
    @raise Spine_error.Error ([Overloaded]) when the breaker sheds the
    call; ([Timeout]) when the deadline is overrun (cooperatively
    inside [f], or by a backoff that cannot fit); any error [f]'s last
    attempt raised otherwise. *)

val breaker_state : t -> breaker_state

type counts = {
  calls : int;       (** admission attempts (sheds included) *)
  completed : int;   (** calls that returned a result *)
  retries : int;     (** backoff sleeps taken *)
  timeouts : int;
  shed : int;
  failures : int;    (** non-timeout typed failures after retries *)
  breaker_trips : int;
  recoveries : int;  (** half-open → closed transitions *)
}

val counts : t -> counts
(** This instance's mirror of the [resilience.*] counters —
    [calls = completed + timeouts + shed + failures] on a quiesced
    wrapper, which is what scenario expectations assert. *)
