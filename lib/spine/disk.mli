(** Disk-resident SPINE (Section 6.2 of the paper).

    Reproduces the paper's methodology for the on-disk experiments: the
    index is built and searched through a bounded buffer pool over a
    synchronous simulated disk, so the measured cost is the structure's
    {e access locality}, not the host's CPU or filesystem cache.  The
    Link Table and the four Rib Tables each occupy their own page
    region, mirroring how the Section 5 layout would be mapped to a
    file.

    The paper's buffering policy — "retain as much as possible of the
    top part of the Link Table in memory", justified by Figure 8's
    top-skewed link destinations — is available as [pin_top_lt_pages]. *)

type config = {
  page_size : int;          (** bytes per device page (default 4096) *)
  frames : int;             (** buffer-pool capacity in pages (default 256) *)
  pin_top_lt_pages : int;   (** LT pages from the top kept resident
                                (default 0 = no pinning) *)
  sync_writes : bool;       (** pay the O_SYNC cost per write, as the
                                paper did (default true) *)
  replacement : Pagestore.Buffer_pool.replacement;
  (** page replacement for unpinned frames (default [`Lru]) *)
  cost : Pagestore.Device.cost;
}

val default_config : config

type t = {
  index : Compact.t;
  device : Pagestore.Device.t;
  pool : Pagestore.Buffer_pool.t;
  router : Pagestore.Trace_router.t;
}

val build : ?config:config -> Bioseq.Packed_seq.t -> t
(** Construct the index with every LT/RT record access routed through
    the buffer pool. Device and pool statistics after the call describe
    the construction I/O; the paper's Figure 7 reads
    [Device.stats device] afterwards. *)

val caps : Engine.caps
(** Backend "disk": [paged] and [traced] set (every record access is
    routed through the buffer pool by the trace router). *)

val engine : t -> Engine.t
(** Pack as a capability-aware engine: queries run over the packed
    layout with every record access faulting through the bounded
    buffer pool, exactly like the paper's disk-resident experiments. *)

val cursor : t -> Engine.cursor
(** An incremental valid-path cursor whose traversal faults pages on
    demand. *)

val reset_io : t -> unit
(** Flush and empty the pool and zero the device counters — call
    between construction and a search measurement so the search starts
    cold, as a freshly-opened disk index would. *)

val simulated_seconds : t -> float
(** Accumulated simulated I/O latency, in seconds. *)
