(** Structural statistics of a SPINE index.

    These back the paper's Table 3 (maximum numeric label values),
    Table 4 (rib-fanout distribution across nodes) and Figure 8
    (distribution of link destinations along the backbone). *)

(* Store-independent result records, defined once (see Matcher for the
   same pattern on the matching side). *)

type label_maxima = {
  max_pt : int;    (** over ribs and extribs *)
  max_lel : int;   (** over links *)
  max_prt : int;   (** over extribs *)
}

type edge_counts = {
  vertebras : int;
  ribs : int;
  extribs : int;
  links : int;
}

module type S = sig
  type store

  val label_maxima : store -> label_maxima
  val rib_distribution : store -> int array
  val edge_counts : store -> edge_counts
  val link_histogram : store -> buckets:int -> int array
end

module Make (S : Store_sig.S) = struct
  type store = S.t

  let label_maxima t =
    let n = S.length t in
    let max_pt = ref 0 and max_lel = ref 0 and max_prt = ref 0 in
    for node = 0 to n do
      if node >= 1 then begin
        let lel = S.link_lel t node in
        if lel > !max_lel then max_lel := lel
      end;
      S.fold_ribs t node ~init:() ~f:(fun () _code _dest pt ->
          if pt > !max_pt then max_pt := pt);
      match S.find_extrib t node with
      | Some (_, pt, prt, _) ->
        if pt > !max_pt then max_pt := pt;
        if prt > !max_prt then max_prt := prt
      | None -> ()
    done;
    { max_pt = !max_pt; max_lel = !max_lel; max_prt = !max_prt }

  (* counts.(k) = number of nodes with exactly k downstream edges
     (ribs + extrib, vertebras excluded), k = 0 .. alphabet size + 1 *)
  let rib_distribution t =
    let n = S.length t in
    let max_fanout = Bioseq.Alphabet.size (S.alphabet t) + 1 in
    let counts = Array.make (max_fanout + 1) 0 in
    for node = 0 to n do
      let ribs =
        S.fold_ribs t node ~init:0 ~f:(fun acc _ _ _ -> acc + 1)
      in
      let fanout =
        ribs + (match S.find_extrib t node with Some _ -> 1 | None -> 0)
      in
      let fanout = min fanout max_fanout in
      counts.(fanout) <- counts.(fanout) + 1
    done;
    counts

  let edge_counts t =
    let n = S.length t in
    let ribs = ref 0 and extribs = ref 0 in
    for node = 0 to n do
      ribs := S.fold_ribs t node ~init:!ribs ~f:(fun acc _ _ _ -> acc + 1);
      if Option.is_some (S.find_extrib t node) then incr extribs
    done;
    { vertebras = n; ribs = !ribs; extribs = !extribs; links = n }

  (* Histogram of link destinations over [buckets] equal slices of the
     backbone: Figure 8's evidence that links point overwhelmingly to
     the top of the structure. *)
  let link_histogram t ~buckets =
    if buckets < 1 then invalid_arg "Stats.link_histogram";
    let n = S.length t in
    let counts = Array.make buckets 0 in
    if n > 0 then
      for node = 1 to n do
        let d = S.link_dest t node in
        let b = min (buckets - 1) (d * buckets / (n + 1)) in
        counts.(b) <- counts.(b) + 1
      done;
    counts
end
