let magic = "SPNE"
let version = 3
let header_size = 5
let trailer_size = 4

let corrupt ?page fmt = Spine_error.corrupt ~region:"snapshot" ?page fmt

(* little-endian primitives over Buffer / (string, pos) *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u32 buf v =
  for k = 0 to 3 do put_u8 buf ((v lsr (8 * k)) land 0xFF) done

let put_u64 buf v =
  for k = 0 to 7 do put_u8 buf ((v lsr (8 * k)) land 0xFF) done

type reader = { data : Bytes.t; mutable pos : int }

let need r n =
  if r.pos + n > Bytes.length r.data then
    corrupt ~page:r.pos "truncated input (need %d bytes at offset %d of %d)"
      n r.pos (Bytes.length r.data)

let get_u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  let v = ref 0 in
  for k = 0 to 3 do v := !v lor (get_u8 r lsl (8 * k)) done;
  !v

let get_u64 r =
  let v = ref 0 in
  for k = 0 to 7 do v := !v lor (get_u8 r lsl (8 * k)) done;
  !v

let alphabet_symbols alphabet =
  String.init (Bioseq.Alphabet.size alphabet)
    (fun code -> Bioseq.Alphabet.decode alphabet code)

let alphabet_of_symbols symbols =
  (* recover the canonical alphabets so names round-trip *)
  let candidates =
    [ Bioseq.Alphabet.dna; Bioseq.Alphabet.protein; Bioseq.Alphabet.byte ]
  in
  match
    List.find_opt
      (fun a -> String.equal (alphabet_symbols a) symbols)
      candidates
  with
  | Some a -> a
  | None -> Bioseq.Alphabet.make symbols

(* Versions 1 and 2 serialized the sequence at [Alphabet.bits] bits per
   symbol, MSB-first within each byte; v3 dumps the packed row's raw
   words instead.  Old images still load through this decoder. *)
let decode_legacy_sequence alphabet ~len bytes =
  let bits = Bioseq.Alphabet.bits alphabet in
  let seq = Bioseq.Packed_seq.create ~capacity:(max 1 len) alphabet in
  for i = 0 to len - 1 do
    let bit0 = i * bits in
    let code = ref 0 in
    for b = 0 to bits - 1 do
      let pos = bit0 + b in
      let byte = pos / 8 and off = pos mod 8 in
      let set = Char.code (Bytes.get bytes byte) land (0x80 lsr off) <> 0 in
      code := (!code lsl 1) lor (if set then 1 else 0)
    done;
    (* append validates against the alphabet, as of_packed_bits does *)
    Bioseq.Packed_seq.append seq !code
  done;
  seq

let to_bytes (t : Index.t) =
  let s = Index.store t in
  let n = Index.length t in
  let alphabet = Index.alphabet t in
  let buf = Buffer.create (n * 12) in
  Buffer.add_string buf magic;
  put_u8 buf version;
  let symbols = alphabet_symbols alphabet in
  put_u32 buf (String.length symbols);
  Buffer.add_string buf symbols;
  put_u64 buf n;
  (* v3: the packed row IS the serialized form — cell width followed by
     the raw backing words, no per-code re-packing on snapshot *)
  let seq = Index.sequence t in
  put_u8 buf (Bioseq.Packed_seq.width seq);
  let packed = Bioseq.Packed_seq.packed_bits seq in
  put_u32 buf (Bytes.length packed);
  Buffer.add_bytes buf packed;
  for node = 1 to n do
    let dest, lel = Index.link t node in
    put_u32 buf dest;
    put_u32 buf lel
  done;
  put_u32 buf (Fast_store.rib_count s);
  for node = 0 to n do
    Fast_store.fold_ribs s node ~init:() ~f:(fun () code dest pt ->
        put_u32 buf node;
        put_u8 buf code;
        put_u32 buf dest;
        put_u32 buf pt)
  done;
  put_u32 buf (Fast_store.extrib_count s);
  for node = 0 to n do
    match Fast_store.find_extrib s node with
    | None -> ()
    | Some (dest, pt, prt, anchor) ->
      put_u32 buf node;
      put_u32 buf dest;
      put_u32 buf pt;
      put_u32 buf prt;
      put_u32 buf anchor
  done;
  (* whole-snapshot CRC-32C over everything above: one flipped bit
     anywhere in the image is rejected before any of it is decoded *)
  let body = Buffer.to_bytes buf in
  let out = Bytes.create (Bytes.length body + trailer_size) in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = Xutil.Crc32c.bytes body in
  for k = 0 to 3 do
    Bytes.set out (Bytes.length body + k)
      (Char.chr ((crc lsr (8 * k)) land 0xFF))
  done;
  out

let of_bytes data =
  let len = Bytes.length data in
  if len < header_size then
    corrupt "input too short to be a snapshot (%d bytes)" len;
  if not (String.equal (Bytes.sub_string data 0 4) magic) then
    corrupt "bad magic (not a SPINE snapshot)";
  let v = Char.code (Bytes.get data 4) in
  if v < 1 || v > version then
    corrupt "unsupported snapshot version %d" v;
  (* Version 1 snapshots predate the whole-image checksum: same record
     layout, no trailer.  They still load (without integrity cover) so
     existing files need not be rebuilt. *)
  if v >= 2 then begin
    if len < header_size + trailer_size then
      corrupt "input too short to be a snapshot (%d bytes)" len;
    (* verify the trailing checksum before trusting any field *)
    let stored = ref 0 in
    for k = 3 downto 0 do
      stored := (!stored lsl 8) lor Char.code (Bytes.get data (len - 4 + k))
    done;
    let actual = Xutil.Crc32c.digest data ~pos:0 ~len:(len - trailer_size) in
    if actual <> !stored then
      corrupt "snapshot checksum mismatch (stored %08x, computed %08x)"
        !stored actual
  end;
  let r = { data; pos = header_size } in
  let sym_len = get_u32 r in
  need r sym_len;
  let symbols = Bytes.sub_string r.data r.pos sym_len in
  r.pos <- r.pos + sym_len;
  let alphabet = alphabet_of_symbols symbols in
  let n = get_u64 r in
  let seq =
    if v >= 3 then begin
      let w = get_u8 r in
      if w <> 2 && w <> 4 && w <> 8 then
        corrupt ~page:r.pos "unsupported sequence cell width %d" w;
      let cpw = 62 / w in
      (* sanity before allocating anything proportional to n: the
         payload that follows must physically be able to hold n codes
         at [cpw] codes per 8-byte word, plus n link records *)
      if n < 0 || n > Bytes.length r.data * cpw then
        corrupt ~page:r.pos "implausible sequence length %d" n;
      let packed_len = get_u32 r in
      if packed_len < (n + cpw - 1) / cpw * 8 then
        corrupt ~page:r.pos "sequence payload shorter than its declared length";
      need r packed_len;
      let packed = Bytes.sub r.data r.pos packed_len in
      r.pos <- r.pos + packed_len;
      try Bioseq.Packed_seq.of_packed_bits alphabet ~len:n ~width:w packed
      with Invalid_argument _ ->
        (* corrupt bit patterns: stray padding bits or out-of-alphabet
           codes *)
        corrupt ~page:r.pos "sequence payload decodes outside the alphabet"
    end
    else begin
      if n < 0
         || n > (Bytes.length r.data * 8) / Bioseq.Alphabet.bits alphabet
      then corrupt ~page:r.pos "implausible sequence length %d" n;
      let packed_len = get_u32 r in
      if packed_len < (n * Bioseq.Alphabet.bits alphabet + 7) / 8 then
        corrupt ~page:r.pos "sequence payload shorter than its declared length";
      need r packed_len;
      let packed = Bytes.sub r.data r.pos packed_len in
      r.pos <- r.pos + packed_len;
      try decode_legacy_sequence alphabet ~len:n packed
      with Invalid_argument _ ->
        (* corrupt bit patterns decode to out-of-alphabet codes *)
        corrupt ~page:r.pos "sequence payload decodes outside the alphabet"
    end
  in
  let store = Fast_store.create ~capacity:(max 16 n) alphabet in
  Bioseq.Packed_seq.iteri seq ~f:(fun _ code -> Fast_store.append_char store code);
  for node = 1 to n do
    let dest = get_u32 r in
    let lel = get_u32 r in
    Fast_store.set_link store node ~dest ~lel
  done;
  let nribs = get_u32 r in
  need r (nribs * 13);
  for _ = 1 to nribs do
    let node = get_u32 r in
    let code = get_u8 r in
    let dest = get_u32 r in
    let pt = get_u32 r in
    Fast_store.add_rib store node ~code ~dest ~pt
  done;
  let next = get_u32 r in
  need r (next * 20);
  for _ = 1 to next do
    let node = get_u32 r in
    let dest = get_u32 r in
    let pt = get_u32 r in
    let prt = get_u32 r in
    let anchor = get_u32 r in
    if node > n || dest > n || pt > n || prt > n || anchor > n then
      corrupt ~page:r.pos "extrib record references node beyond the backbone";
    Fast_store.add_extrib store node ~dest ~pt ~prt ~anchor
  done;
  (* a checksum-less v1 image must end exactly here: trailing bytes mean
     a v2 image whose version byte was corrupted to 1 — rejecting them
     keeps the flipped byte from silently bypassing the CRC *)
  if v = 1 && r.pos <> len then
    corrupt ~page:r.pos "trailing bytes after a version-1 snapshot";
  Index.of_store store

let to_file path t =
  let oc =
    try open_out_bin path
    with Sys_error msg ->
      Spine_error.io_failed ~op:Spine_error.Write "%s" msg
  in
  (try output_bytes oc (to_bytes t) with e -> close_out oc; raise e);
  close_out oc

let of_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> Spine_error.io_failed ~op:Spine_error.Read "%s" msg
  in
  let data =
    try
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b
    with e -> close_in ic; raise e
  in
  close_in ic;
  of_bytes data
