(** Hashtable-backed SPINE store, optimised for in-memory construction
    and search speed.

    Links are dense (every node has one) and live in flat vectors; ribs
    and extribs are sparse (Table 4: under 35 % of nodes carry any) and
    live in int-specialised hashtables ({!Xutil.Int_tbl} — no generic
    hashing on the lookup path) keyed by [(node << code_bits) | code].
    Rib payloads are packed into a single immediate integer to avoid
    allocating on the construction hot path.

    Implements {!Store_sig.S}; see there for the node/edge
    vocabulary. *)

type t

val create : ?capacity:int -> Bioseq.Alphabet.t -> t

val alphabet : t -> Bioseq.Alphabet.t
val length : t -> int
val sequence : t -> Bioseq.Packed_seq.t
val char_at : t -> int -> int
val append_char : t -> int -> unit
val link_dest : t -> int -> int
val link_lel : t -> int -> int
val set_link : t -> int -> dest:int -> lel:int -> unit
val find_rib : t -> int -> int -> (int * int) option
val add_rib : t -> int -> code:int -> dest:int -> pt:int -> unit
val find_extrib : t -> int -> (int * int * int * int) option
val add_extrib : t -> int -> dest:int -> pt:int -> prt:int -> anchor:int -> unit
val fold_ribs : t -> int -> init:'a -> f:('a -> int -> int -> int -> 'a) -> 'a

val model_bytes : t -> int
(** Memory model for the comparison tables: what a C implementation of
    this logical structure would allocate, using the paper's optimised
    field widths (Section 5): 4-byte destinations, 2-byte numeric
    labels, bit-packed character labels. *)

val rib_count : t -> int
val extrib_count : t -> int

val space_components : t -> (string * int) list
(** Measured live bytes of this OCaml representation per component
    ([vertebrae]/[links]/[ribs]/[extribs]); see {!Store_sig.S}. *)
