(** Valid-path search over a SPINE index (Section 4 of the paper).

    A path is valid when it starts at the root and every rib/extrib it
    takes satisfies the pathlength-threshold constraint; valid paths
    spell exactly the substrings of the data string, and the node a
    valid path ends on is the end of the substring's {e first}
    occurrence.  Remaining occurrences are recovered with the paper's
    target-node-buffer scan: one sequential pass over the backbone,
    admitting every node whose link points into the buffer with
    sufficient LEL, with buffer membership tested by binary search. *)

(* Traversal telemetry, one counter per edge family (the profile the
   packed-trie literature attributes disk wins to).  [link_hops] is
   shared with the matcher's backward-link walk and the cursor's
   suffix-drop loop. *)
let c_vertebra_hops = Telemetry.counter "search.vertebra_hops"
let c_rib_hops = Telemetry.counter "search.rib_hops"
let c_extrib_hops = Telemetry.counter "search.extrib_hops"
let c_link_hops = Telemetry.counter "search.link_hops"
let c_scan_nodes = Telemetry.counter "search.scan_nodes"
let c_occurrences = Telemetry.counter "search.occurrences_found"

(* The packed-scan split: whole-word compares vs per-character fallback
   compares on the vertebra runs (descent, matching extension, cursor
   advance).  A word step covers up to [Packed_seq.codes_per_word]
   characters, so word_steps << vertebra_hops is the win being
   measured. *)
let c_word_steps = Telemetry.counter "search.word_steps"
let c_scalar_steps = Telemetry.counter "search.scalar_steps"

(* One trace instant per edge crossed, tagged with the edge family:
   interleaved with the pool.fault spans of a routed store, the trace
   shows exactly which traversal step faulted which page. *)
let trace_step family ~node ~dest =
  Trace.instant family [ Trace.Int ("node", node); Trace.Int ("dest", dest) ]

module type S = sig
  type store

  val step : store -> int -> int -> int -> int

  val extend :
    store -> node:int -> pl:int -> Bioseq.Packed_seq.Pattern.t -> pos:int ->
    int * int
  (** Descend from [node] (pathlength [pl]) consuming pattern codes
      from [pos]: vertebra runs extend word-at-a-time against the
      packed text row, with one scalar {!step} at each non-vertebra
      boundary (rib/extrib transitions).  Returns the landing node and
      the number of codes consumed. *)

  val find_first_pattern :
    store -> Bioseq.Packed_seq.Pattern.t -> int option

  val contains_pattern : store -> Bioseq.Packed_seq.Pattern.t -> bool
  val end_nodes_pattern : store -> Bioseq.Packed_seq.Pattern.t -> int list
  val occurrences_pattern : store -> Bioseq.Packed_seq.Pattern.t -> int list
  val find_first : store -> int array -> int option
  val contains_codes : store -> int array -> bool
  val encode : store -> string -> int array option
  val contains : store -> string -> bool
  val occurrences_batch : store -> (int * int) array -> Xutil.Int_vec.t array
  val end_nodes : store -> int array -> int list
  val end_nodes_binary : store -> int array -> int list
  val occurrences : store -> int array -> int list
  val first_occurrence : store -> int array -> int option
  val occurrences_many : store -> int array list -> int list array
end

module Make (S : Store_sig.S) = struct
  type store = S.t

  (* One forward step from [node] with pathlength [pl] on character [c].
     Returns the destination node, or -1 when no valid edge exists. *)
  let step t node pl c =
    if node < S.length t && S.char_at t node = c then begin
      Telemetry.incr c_vertebra_hops;
      Profile.step_vertebra ();
      if Trace.on () then trace_step "step.vertebra" ~node ~dest:(node + 1);
      node + 1
    end
    else
      match S.find_rib t node c with
      | None -> -1
      | Some (dest, pt) ->
        if pl <= pt then begin
          Telemetry.incr c_rib_hops;
          Profile.step_rib ();
          if Trace.on () then trace_step "step.rib" ~node ~dest;
          dest
        end
        else begin
          (* chase the extrib chain for a child (same PRT) with
             sufficient threshold *)
          let rec chase cur =
            match S.find_extrib t cur with
            | None -> -1
            | Some (edest, ept, eprt, eanchor) ->
              Telemetry.incr c_extrib_hops;
              Profile.step_extrib ();
              if Trace.on () then trace_step "step.extrib" ~node:cur ~dest:edest;
              if eprt = pt && eanchor = dest && ept >= pl then edest
              else chase edest
          in
          chase dest
        end

  (* Record one bulk vertebra run in the counters.  A run of [run]
     matched characters is exactly [run] vertebra steps (vertebra edges
     carry no threshold check, so word comparison is step-for-step
     equivalent to the scalar walk); the word/scalar split is what the
     packed refactor adds on top. *)
  let count_run ~node ~run ~words ~scalars =
    if run > 0 then begin
      Telemetry.add c_vertebra_hops run;
      Profile.add_vertebras run;
      if Trace.on () then
        Trace.instant "step.vertebra_run"
          [ Trace.Int ("node", node); Trace.Int ("len", run) ]
    end;
    if words > 0 then begin
      Telemetry.add c_word_steps words;
      Profile.add_word_steps words
    end;
    if scalars > 0 then begin
      Telemetry.add c_scalar_steps scalars;
      Profile.add_scalar_steps scalars
    end

  (* Bulk valid-path descent: node [node] is the end of a backbone
     prefix, so its outgoing vertebra run spells text[node..] — one
     packed mismatch against the pattern span extends the path by whole
     words.  Only the boundary character (a failed vertebra) pays a
     scalar [step] for the rib/extrib logic. *)
  let extend t ~node ~pl (p : Bioseq.Packed_seq.Pattern.t) ~pos =
    let seq = S.sequence t in
    let n = S.length t in
    let m = Bioseq.Packed_seq.Pattern.length p in
    let rec go node pl pos =
      if pos >= m then (node, pos)
      else begin
        let limit = min (m - pos) (n - node) in
        let run, words, scalars =
          if limit > 0 then
            Bioseq.Packed_seq.mismatch_pattern seq ~pos:node p ~ppos:pos
              ~len:limit
          else (0, 0, 0)
        in
        count_run ~node ~run ~words ~scalars;
        let node = node + run and pl = pl + run and pos = pos + run in
        if pos >= m then (node, pos)
        else
          let nxt = step t node pl (Bioseq.Packed_seq.Pattern.get p pos) in
          if nxt < 0 then (node, pos) else go nxt (pl + 1) (pos + 1)
      end
    in
    let node', stop = go node pl pos in
    (node', stop - pos)

  (* End node of the first occurrence of the pattern, or None. *)
  let find_first_pattern t p =
    let m = Bioseq.Packed_seq.Pattern.length p in
    let node, consumed = extend t ~node:0 ~pl:0 p ~pos:0 in
    Profile.add_descent consumed;
    if consumed >= m then Some node else None

  (* Codes-based entry point: pack the pattern once per query, then
     take the word path. *)
  let find_first t codes =
    find_first_pattern t
      (Bioseq.Packed_seq.Pattern.of_codes (S.alphabet t) codes)

  let contains_pattern t p = Option.is_some (find_first_pattern t p)
  let contains_codes t codes = Option.is_some (find_first t codes)

  let encode t s =
    let alphabet = S.alphabet t in
    try
      Some (Array.init (String.length s)
              (fun i -> Bioseq.Alphabet.encode alphabet s.[i]))
    with Invalid_argument _ -> None

  let contains t s =
    match encode t s with
    | Some codes -> contains_codes t codes
    | None -> false

  (* The deferred, batched occurrence scan: given the first-occurrence
     end node and length of several patterns, find every occurrence of
     all of them in one sequential backbone pass. [targets] maps a
     buffered node to the patterns whose buffer it belongs to. *)
  let occurrences_batch t firsts =
    let k = Array.length firsts in
    let buffers = Array.init k (fun _ -> Xutil.Int_vec.create ()) in
    if k > 0 then begin
      let targets : int list Xutil.Int_tbl.t = Xutil.Int_tbl.create 64 in
      let add_target node j =
        let prev =
          Option.value ~default:[] (Xutil.Int_tbl.find_opt targets node)
        in
        Xutil.Int_tbl.replace targets node (j :: prev)
      in
      let min_first = ref max_int in
      Array.iteri
        (fun j (first, _len) ->
          Xutil.Int_vec.push buffers.(j) first;
          Telemetry.incr c_occurrences;
          Profile.add_found 1;
          add_target first j;
          if first < !min_first then min_first := first)
        firsts;
      let tr = Trace.on () in
      if tr then
        Trace.begin_span "search.scan"
          [ Trace.Int ("patterns", k); Trace.Int ("from", !min_first) ];
      for node = !min_first + 1 to S.length t do
        Telemetry.incr c_scan_nodes;
        let d = S.link_dest t node in
        match Xutil.Int_tbl.find_opt targets d with
        | None -> ()
        | Some ids ->
          let lel = S.link_lel t node in
          List.iter
            (fun j ->
              let _, len = firsts.(j) in
              if lel >= len then begin
                Xutil.Int_vec.push buffers.(j) node;
                Telemetry.incr c_occurrences;
                Profile.add_found 1;
                add_target node j
              end)
            ids
      done;
      (* one batched bump covers the whole scan: the loop above visited
         exactly [S.length t - min_first] nodes, and a per-node DLS read
         would tax the hottest loop in the query path *)
      Profile.add_scan (max 0 (S.length t - !min_first));
      if tr then Trace.end_span ()
    end;
    buffers

  (* All end nodes of [codes], ascending; the paper's single-pattern
     search followed by the downstream link scan. The binary-search
     variant of buffer membership lives in [occurrences_scan] below and
     is what the ablation bench compares against the hashtable. *)
  let ends_from t ~first ~len =
    let buffers = occurrences_batch t [| (first, len) |] in
    Xutil.Int_vec.fold buffers.(0) ~init:[] ~f:(fun acc x -> x :: acc)
    |> List.rev

  let end_nodes t codes =
    match find_first t codes with
    | None -> []
    | Some first -> ends_from t ~first ~len:(Array.length codes)

  let end_nodes_pattern t p =
    match find_first_pattern t p with
    | None -> []
    | Some first ->
      ends_from t ~first ~len:(Bioseq.Packed_seq.Pattern.length p)

  let occurrences_pattern t p =
    List.map
      (fun e -> e - Bioseq.Packed_seq.Pattern.length p)
      (end_nodes_pattern t p)

  (* Faithful single-pattern variant using binary search on the sorted
     target-node buffer, exactly as described in the paper. *)
  let end_nodes_binary t codes =
    match find_first t codes with
    | None -> []
    | Some first ->
      let len = Array.length codes in
      let buffer = Xutil.Int_vec.create () in
      Xutil.Int_vec.push buffer first;
      Telemetry.incr c_occurrences;
      Profile.add_found 1;
      let tr = Trace.on () in
      if tr then
        Trace.begin_span "search.scan_binary" [ Trace.Int ("from", first) ];
      for node = first + 1 to S.length t do
        Telemetry.incr c_scan_nodes;
        let lel = S.link_lel t node in
        if lel >= len then begin
          let d = S.link_dest t node in
          match Xutil.Int_vec.binary_search buffer d with
          | Some _ ->
            Xutil.Int_vec.push buffer node;
            Telemetry.incr c_occurrences;
            Profile.add_found 1
          | None -> ()
        end
      done;
      Profile.add_scan (max 0 (S.length t - first));
      if tr then Trace.end_span ();
      Xutil.Int_vec.fold buffer ~init:[] ~f:(fun acc x -> x :: acc) |> List.rev

  let occurrences t codes =
    List.map (fun e -> e - Array.length codes) (end_nodes t codes)

  let first_occurrence t codes =
    Option.map (fun e -> e - Array.length codes) (find_first t codes)

  (* Dictionary search: find the first occurrence of each pattern
     individually (cheap valid-path walks), then resolve every
     occurrence of all present patterns with ONE shared deferred
     backbone scan. *)
  let occurrences_many t patterns =
    let firsts =
      List.map
        (fun pat ->
          match find_first t pat with
          | Some e -> (e, Array.length pat)
          | None -> (-1, 0))
        patterns
    in
    let present =
      List.filter (fun (e, _) -> e >= 0) firsts |> Array.of_list
    in
    let buffers = occurrences_batch t present in
    let results = Array.make (List.length patterns) [] in
    let next = ref 0 in
    List.iteri
      (fun i (e, len) ->
        if e >= 0 then begin
          results.(i) <-
            Xutil.Int_vec.fold buffers.(!next) ~init:[]
              ~f:(fun acc e -> (e - len) :: acc)
            |> List.rev;
          incr next
        end)
      firsts;
    results
end
