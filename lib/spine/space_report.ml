(* Backend-agnostic index space accounting.  Stores report measured
   bytes per named component (Store_sig.space_components); paged
   backends add their pagestore/buffer-pool footprint on top via
   Engine.pack's [space_extra].  This module only aggregates and
   formats — it deliberately depends on nothing so Engine can use it
   without a cycle through Compact. *)

type component = {
  comp : string;
  bytes : int;
}

type t = {
  backend : string;
  chars : int;
  components : component list;
}

let make ~backend ~chars components =
  { backend;
    chars;
    components = List.map (fun (comp, bytes) -> { comp; bytes }) components }

(* The pagestore/buffer-pool components duplicate index bytes already
   attributed to a store component (the pool caches device pages; the
   simulated disk mirrors the in-memory tables), so the index footprint
   proper is the store components only. *)
let is_storage_overlay comp =
  String.length comp >= 10 && String.sub comp 0 10 = "pagestore_"
  || String.length comp >= 11 && String.sub comp 0 11 = "bufferpool_"

let total_bytes t =
  List.fold_left (fun acc c -> acc + c.bytes) 0 t.components

let index_bytes t =
  List.fold_left
    (fun acc c -> if is_storage_overlay c.comp then acc else acc + c.bytes)
    0 t.components

let bytes_per_char t =
  float_of_int (index_bytes t) /. float_of_int (max 1 t.chars)

let attributed_fraction t =
  (* every byte in the report is attributed to a named component, so
     this is 1.0 unless a constructor adds an explicit "other" bucket *)
  let total = total_bytes t in
  if total = 0 then 1.0
  else
    let named =
      List.fold_left
        (fun acc c -> if c.comp = "other" then acc else acc + c.bytes)
        0 t.components
    in
    float_of_int named /. float_of_int total

let rows t =
  let total = max 1 (total_bytes t) in
  let chars = max 1 t.chars in
  List.map
    (fun c ->
      [ c.comp;
        string_of_int c.bytes;
        Printf.sprintf "%.2f" (float_of_int c.bytes /. float_of_int chars);
        Printf.sprintf "%.1f%%" (100.0 *. float_of_int c.bytes /. float_of_int total) ])
    t.components
  @ [ [ "total";
        string_of_int (total_bytes t);
        Printf.sprintf "%.2f" (float_of_int (total_bytes t) /. float_of_int chars);
        "100.0%" ] ]

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jsonl t =
  let comps =
    String.concat ","
      (List.map
         (fun c -> Printf.sprintf "\"%s\":%d" (json_escape c.comp) c.bytes)
         t.components)
  in
  Printf.sprintf
    "{\"backend\":\"%s\",\"chars\":%d,\"total_bytes\":%d,\
     \"index_bytes\":%d,\"bytes_per_char\":%.4f,\"components\":{%s}}"
    (json_escape t.backend) t.chars (total_bytes t) (index_bytes t)
    (bytes_per_char t) comps

let set_gauges t =
  List.iter
    (fun c ->
      Telemetry.set
        (Telemetry.gauge
           (Printf.sprintf "space.%s.%s_bytes" t.backend c.comp))
        (float_of_int c.bytes))
    t.components;
  Telemetry.set
    (Telemetry.gauge (Printf.sprintf "space.%s.total_bytes" t.backend))
    (float_of_int (total_bytes t))
