type config = {
  page_size : int;
  frames : int;
  pin_top_lt_pages : int;
  sync_writes : bool;
  replacement : Pagestore.Buffer_pool.replacement;
  cost : Pagestore.Device.cost;
}

let default_config =
  { page_size = 4096;
    frames = 256;
    pin_top_lt_pages = 0;
    sync_writes = true;
    replacement = `Lru;
    cost = Pagestore.Device.default_cost }

type t = {
  index : Compact.t;
  device : Pagestore.Device.t;
  pool : Pagestore.Buffer_pool.t;
  router : Pagestore.Trace_router.t;
}

(* Disjoint page regions per structure; the device's page space is
   sparse so generous spacing costs nothing. *)
let region_base structure = structure * (1 lsl 24)

let regions alphabet =
  let mf = max 4 (Bioseq.Alphabet.size alphabet) in
  let slot_capacity = [| 1; 2; 3; mf |] in
  let lt =
    { Pagestore.Trace_router.structure = 0;
      base_page = region_base 0;
      record_bytes = 8 }
  in
  let rts =
    List.init 4 (fun table ->
        { Pagestore.Trace_router.structure = 1 + table;
          base_page = region_base (1 + table);
          record_bytes = 4 + (7 * slot_capacity.(table)) + 2 })
  in
  lt :: rts

(* Span pair: [disk.build] covers pool setup + construction + flush;
   the nested [disk.construct] isolates the index construction proper,
   so the difference is the I/O overhead. *)
let s_build = Telemetry.span "disk.build"
let s_construct = Telemetry.span "disk.construct"

let build ?(config = default_config) seq =
  Telemetry.with_span s_build @@ fun () ->
  Trace.span "disk.build"
    [ Trace.Int ("length", Bioseq.Packed_seq.length seq);
      Trace.Int ("page_size", config.page_size);
      Trace.Int ("frames", config.frames) ]
  @@ fun () ->
  let alphabet = Bioseq.Packed_seq.alphabet seq in
  let device =
    Pagestore.Device.create ~cost:config.cost ~sync_writes:config.sync_writes
      ~page_size:config.page_size ()
  in
  let pin page =
    config.pin_top_lt_pages > 0
    && page >= region_base 0
    && page < region_base 0 + config.pin_top_lt_pages
  in
  let pool =
    Pagestore.Buffer_pool.create ~pin ~replacement:config.replacement
      ~frames:config.frames device
  in
  let router = Pagestore.Trace_router.create pool (regions alphabet) in
  let trace ~structure ~index ~write =
    Pagestore.Trace_router.route router ~structure ~index ~write
  in
  let index =
    Telemetry.with_span s_construct (fun () ->
        Trace.span "disk.construct" [] (fun () -> Compact.of_seq ~trace seq))
  in
  Pagestore.Buffer_pool.flush pool;
  { index; device; pool; router }

let caps =
  { Engine.backend = "disk"; persistent = false; paged = true;
    traced = true }

(* The simulated device mirrors the in-memory tables page-for-page and
   the pool caches it; both are storage overlays on top of the store's
   own components, reported so `stats --space` shows the whole stack. *)
let space_extra t () =
  let page = Pagestore.Device.page_size t.device in
  [ ("pagestore_pages", Pagestore.Device.pages_allocated t.device * page);
    ("bufferpool_frames", Pagestore.Buffer_pool.frames t.pool * page) ]

let engine t =
  Engine.pack ~caps ~space_extra:(space_extra t)
    (module Compact_store : Store_sig.S with type t = Compact_store.t)
    (Compact.store t.index)

let cursor t = Engine.cursor (engine t)

let reset_io t =
  Pagestore.Buffer_pool.drop t.pool;
  Pagestore.Buffer_pool.reset_stats t.pool;
  Pagestore.Device.reset_stats t.device

let simulated_seconds t =
  (Pagestore.Device.stats t.device).Pagestore.Device.elapsed_us /. 1e6
