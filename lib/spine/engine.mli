(** Capability-aware engine layer: one query surface, many backends.

    The SPINE algorithms are functors over {!Store_sig.S}; historically
    each front-end ({!Index}, {!Compact}, {!Persistent}, {!Disk},
    {!Generalized}) privately re-instantiated them and re-exported
    near-identical wrappers — so every new capability had to be written
    five times.  This module defines the query surface {e exactly once}:

    - {!Api} instantiates the complete algorithm suite
      ({!Search}/{!Matcher}/{!Stats}/{!Cursor}) over one store; every
      front-end's query API is a re-export of its [Api] instance.
    - {!pack} bundles a store implementation, its instantiated
      algorithms, a {!caps} capability record and a liveness [guard]
      into a first-class {!t} — the uniform handle the CLI, the batch
      path and cross-backend tooling (differential tests, the query
      router) operate on.

    The paper closes (Section 8) by arguing SPINE's linearity makes it
    "more amenable for integration with database engines"; this layer
    is that integration surface: a database operator can hold an
    [Engine.t] without caring whether the bytes live in a hashtable, the
    Section 5 packed layout, a paged file, or a simulated disk. *)

(** {2 Capabilities} *)

type caps = {
  backend : string;
  (** "fast", "compact", "persistent", "disk" — the constructor's name
      for itself. *)
  persistent : bool;  (** survives process restart *)
  paged : bool;       (** record accesses go through a buffer pool *)
  traced : bool;      (** logical record accesses are trace-routed *)
}

(** {2 Canonical result types}

    Aliases of the single definitions in {!Matcher} and {!Stats}; the
    per-front-end [Matcher.Make(...)] re-equations are gone. *)

type match_stats = Matcher.stats = {
  nodes_checked : int;
  suffixes_checked : int;
}

type mmatch = Matcher.mmatch = {
  query_end : int;
  length : int;
  data_ends : int list;
}

type label_maxima = Stats.label_maxima = {
  max_pt : int;
  max_lel : int;
  max_prt : int;
}

type edge_counts = Stats.edge_counts = {
  vertebras : int;
  ribs : int;
  extribs : int;
  links : int;
}

(** {2 The shared query API over one store} *)

module type API = sig
  type store

  module Q : Search.S with type store = store
  module M : Matcher.S with type store = store
  module St : Stats.S with type store = store
  module C : Cursor.S with type store = store

  val alphabet : store -> Bioseq.Alphabet.t
  val length : store -> int
  val node_count : store -> int
  val contains : store -> string -> bool
  val contains_codes : store -> int array -> bool
  val contains_pattern : store -> Bioseq.Packed_seq.Pattern.t -> bool
  val find_first : store -> int array -> int option
  val find_first_pattern : store -> Bioseq.Packed_seq.Pattern.t -> int option
  val end_nodes_pattern : store -> Bioseq.Packed_seq.Pattern.t -> int list
  val occurrences_pattern : store -> Bioseq.Packed_seq.Pattern.t -> int list
  val first_occurrence : store -> int array -> int option
  val occurrences : store -> int array -> int list
  val end_nodes : store -> int array -> int list
  val end_nodes_binary : store -> int array -> int list
  val occurrences_batch : store -> (int * int) array -> Xutil.Int_vec.t array
  val occurrences_many : store -> int array list -> int list array

  val matching_statistics :
    store -> Bioseq.Packed_seq.t -> int array * match_stats

  val maximal_matches :
    ?immediate:bool ->
    store -> threshold:int -> Bioseq.Packed_seq.t -> mmatch list * match_stats

  val label_maxima : store -> label_maxima
  val rib_distribution : store -> int array
  val edge_counts : store -> edge_counts
  val link_histogram : store -> buckets:int -> int array
end

module Api (S : Store_sig.S) : API with type store = S.t
(** The whole query API for one store implementation — the only place
    the algorithm functors are applied. *)

(** {2 Packed backends} *)

module type BACKEND = sig
  module S : Store_sig.S
  module A : API with type store = S.t

  val store : S.t
  val caps : caps

  val guard : unit -> unit
  (** Raises when the backend is unusable (e.g. a closed persistent
      index); called before every query. *)

  val space_extra : unit -> (string * int) list
  (** Storage components beyond the store itself (buffer-pool frames,
      device pages); see {!pack}'s [space_extra]. *)
end

type t = (module BACKEND)

val pack :
  ?guard:(unit -> unit) ->
  ?space_extra:(unit -> (string * int) list) ->
  caps:caps ->
  (module Store_sig.S with type t = 's) -> 's -> t
(** [pack (module S) store] packs a store with its instantiated
    algorithms into an engine.  Construction applies the algorithm
    functors — cheap, but callers should build an engine once and
    reuse it rather than re-packing per query.  [space_extra] (default
    none) lets paged constructors report storage components that live
    outside the store — buffer-pool frames, device pages — into
    {!space}. *)

(** {2 The query surface} *)

val caps : t -> caps
val backend : t -> string

val alphabet : t -> Bioseq.Alphabet.t
val length : t -> int
val node_count : t -> int
val contains : t -> string -> bool
val contains_codes : t -> int array -> bool
val find_first : t -> int array -> int option
val first_occurrence : t -> int array -> int option
val occurrences : t -> int array -> int list
val end_nodes : t -> int array -> int list
val occurrences_batch : t -> (int * int) array -> Xutil.Int_vec.t array
val occurrences_many : t -> int array list -> int list array

val encode : t -> string -> int array option
(** Encode a pattern string in the backend's alphabet; [None] if any
    character is outside it. *)

(** {2 Packed patterns}

    A query packed once, at the engine edge, into the word layout of
    {!Bioseq.Packed_seq}: the descent and occurrence resolution then
    compare whole words against the text row, falling back to per-code
    steps only at span boundaries and rib/extrib transitions.  Callers
    issuing one query can keep using the code-array surface above (it
    packs internally); callers re-running a pattern should build it
    once with {!pattern} and reuse it. *)

val pattern : t -> int array -> Bioseq.Packed_seq.Pattern.t
(** Pack a code array against the backend's alphabet.  Out-of-alphabet
    codes are accepted and simply never match. *)

val pattern_of_string : t -> string -> Bioseq.Packed_seq.Pattern.t option
(** {!encode} followed by {!pattern}; [None] if any character is
    outside the backend's alphabet. *)

val contains_pattern : t -> Bioseq.Packed_seq.Pattern.t -> bool

val find_first_pattern : t -> Bioseq.Packed_seq.Pattern.t -> int option
(** End node of the first occurrence, or [None]. *)

val end_nodes_pattern : t -> Bioseq.Packed_seq.Pattern.t -> int list
(** All end nodes, ascending. *)

val occurrences_pattern : t -> Bioseq.Packed_seq.Pattern.t -> int list
(** 0-based start positions, ascending. *)

val matching_statistics :
  t -> Bioseq.Packed_seq.t -> int array * match_stats

val maximal_matches :
  ?immediate:bool ->
  t -> threshold:int -> Bioseq.Packed_seq.t -> mmatch list * match_stats

val label_maxima : t -> label_maxima
val rib_distribution : t -> int array
val edge_counts : t -> edge_counts
val link_histogram : t -> buckets:int -> int array

val profiled : t -> (unit -> 'a) -> 'a * Profile.t
(** [profiled e f] checks [e]'s guard, then runs [f] with a fresh
    per-operation cost profile installed for the calling domain (see
    {!Profile.profiled}): every traversal step, backbone scan node,
    occurrence and buffer-pool/device transfer performed inside [f] is
    attributed to the returned profile.  Scopes nest by shadowing. *)

val space : t -> Space_report.t
(** Measured footprint of the backend, attributed to named components:
    the store's {!Store_sig.S.space_components} plus the constructor's
    [space_extra] (pool frames, device pages).  Also publishes the
    report as telemetry gauges ([space.<backend>.<component>_bytes])
    when collection is enabled. *)

(** {2 Batched queries}

    Many patterns, one deferred backbone scan: each pattern pays its
    own cheap valid-path walk for the first occurrence, then the
    occurrence resolution of {e all} patterns shares a single
    sequential pass (the paper's Section 4 target-node-buffer strategy,
    previously reachable only through the functor layer). *)

type batch_item = {
  pattern : int array;
  count : int;            (** number of occurrences *)
  positions : int list;   (** ascending start positions, empty if absent *)
}

val run_batch : t -> int array list -> batch_item list
(** One result per input pattern, in order. *)

(** {2 Cursors}

    Incremental valid-path cursors (see {!Cursor}) over any backend —
    including compact, persistent and disk stores. *)

type cursor = {
  advance : int -> bool;
  advance_char : char -> bool;
  advance_pattern : Bioseq.Packed_seq.Pattern.t -> int;
    (** Word-at-a-time extension: consumes as many pattern codes as
        form valid-path steps and returns how many. *)
  drop_front : unit -> unit;
  longest_extension : int -> unit;
  reset : unit -> unit;
  length : unit -> int;
  node : unit -> int;
  first_occurrence : unit -> int option;
  occurrences : unit -> int list;
}

val cursor : t -> cursor
(** A fresh cursor at the root.  Every operation re-checks the
    backend's guard, so a cursor over a closed persistent index raises
    rather than reading freed pages. *)
