(** Hashtable-backed SPINE store, optimised for in-memory construction
    and search speed.

    Links are dense (every node has one) and live in flat vectors; ribs
    and extribs are sparse (Table 4: under 35 % of nodes carry any) and
    live in int-specialised hashtables ({!Xutil.Int_tbl} — no generic
    hashing on the lookup path) keyed by [(node << code_bits) | code].
    Rib payloads are packed into a single immediate integer to avoid
    allocating on the construction hot path. *)

module Tbl = Xutil.Int_tbl

type t = {
  seq : Bioseq.Packed_seq.t;
  code_bits : int;
  link_dest : Xutil.Int_vec.t;       (* entry per node; slot 0 unused *)
  link_lel : Xutil.Int_vec.t;
  ribs : int Tbl.t;                  (* key (node << bits) | code *)
  extribs : (int * int * int * int) Tbl.t;
  (* node -> dest, pt, prt, anchor (parent rib's destination) *)
}

let create ?(capacity = 1024) alphabet =
  let link_dest = Xutil.Int_vec.create ~capacity () in
  let link_lel = Xutil.Int_vec.create ~capacity () in
  (* root node *)
  Xutil.Int_vec.push link_dest 0;
  Xutil.Int_vec.push link_lel 0;
  { seq = Bioseq.Packed_seq.create ~capacity alphabet;
    code_bits = Bioseq.Alphabet.bits alphabet;
    link_dest; link_lel;
    ribs = Tbl.create (max 16 (capacity / 4));
    extribs = Tbl.create 64 }

let alphabet t = Bioseq.Packed_seq.alphabet t.seq
let length t = Bioseq.Packed_seq.length t.seq
let sequence t = t.seq
let char_at t i = Bioseq.Packed_seq.get t.seq i

let append_char t c =
  Bioseq.Packed_seq.append t.seq c;
  Xutil.Int_vec.push t.link_dest 0;
  Xutil.Int_vec.push t.link_lel 0

let link_dest t i = Xutil.Int_vec.get t.link_dest i
let link_lel t i = Xutil.Int_vec.get t.link_lel i

let set_link t i ~dest ~lel =
  Xutil.Int_vec.set t.link_dest i dest;
  Xutil.Int_vec.set t.link_lel i lel

(* dest and pt each fit in 31 bits for any string this store can hold *)
let pack ~dest ~pt = (dest lsl 31) lor pt
let unpack v = (v lsr 31, v land 0x7FFF_FFFF)

let rib_key t node code = (node lsl t.code_bits) lor code

let find_rib t node code =
  match Tbl.find_opt t.ribs (rib_key t node code) with
  | None -> None
  | Some v -> Some (unpack v)

let add_rib t node ~code ~dest ~pt =
  Tbl.replace t.ribs (rib_key t node code) (pack ~dest ~pt)

let find_extrib t node = Tbl.find_opt t.extribs node

let add_extrib t node ~dest ~pt ~prt ~anchor =
  Tbl.replace t.extribs node (dest, pt, prt, anchor)

let fold_ribs t node ~init ~f =
  let nsyms = Bioseq.Alphabet.size (alphabet t) in
  let acc = ref init in
  for code = 0 to nsyms - 1 do
    match find_rib t node code with
    | Some (dest, pt) -> acc := f !acc code dest pt
    | None -> ()
  done;
  !acc

(* Memory model for the comparison tables: what a C implementation of
   this logical structure would allocate, using the paper's optimised
   field widths (Section 5): 4-byte destinations, 2-byte numeric labels,
   bit-packed character labels. *)
let model_bytes t =
  let n = length t in
  let lt_bytes = (4 + 2) * (n + 1) in
  let rib_bytes = (4 + 2) * Tbl.length t.ribs in
  (* dest + PT + PRT + 4-byte anchor (the chain-attribution correction) *)
  let extrib_bytes = (4 + 2 + 2 + 4) * Tbl.length t.extribs in
  let cl_bytes =
    (n * Bioseq.Alphabet.payload_bits (alphabet t) + 7) / 8
  in
  lt_bytes + rib_bytes + extrib_bytes + cl_bytes

let rib_count t = Tbl.length t.ribs
let extrib_count t = Tbl.length t.extribs

(* Measured live bytes of this OCaml representation (not the C model of
   [model_bytes]): the packed word row for the sequence ([62 / width]
   codes per 8-byte word), one word per link vector slot, and ~4 words
   per hashtable binding (bucket cons: header + key + data + next) plus
   the boxed payload tuple for extribs (header + 4 fields). *)
let space_components t =
  let word = Sys.word_size / 8 in
  let n = length t in
  [ ("vertebrae", Bioseq.Packed_seq.packed_byte_length t.seq);
    ("links", 2 * (n + 1) * word);
    ("ribs", rib_count t * 4 * word);
    ("extribs", extrib_count t * (4 + 5) * word) ]
