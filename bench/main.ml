(* Benchmark entry point.

   Two layers, both emitted to stdout:

   1. The experiment harness regenerates every table and figure of the
      paper's evaluation section (Tables 2-7, Figures 6-8, plus the
      Section 5 space accounting, the Section 5.2 protein runs and the
      ablations). `bench/main.exe table5` runs a single experiment;
      no arguments runs everything.  `micro` runs only the
      micro-benchmarks, `micro:packed` only one family, and either
      combines with experiment names.

   2. One Bechamel micro-benchmark group per table/figure, measuring
      the kernel operation each experiment times (construction,
      matching, disk construction, occurrence scans), with proper
      OLS-estimated per-run costs.

   Scales are modest by default so the full run finishes in minutes;
   use bin/experiments_main.exe (or SPINE_SCALE / SPINE_DISK_SCALE) for
   full-scale runs. *)

open Bechamel
open Toolkit

let bench_scale = 0.01      (* corpus fraction for micro-bench inputs *)

(* A malformed scale is an operator mistake worth a clear message, not
   a Failure backtrace from float_of_string. *)
let env_scale name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some v ->
    (match float_of_string_opt v with
     | Some f -> f
     | None ->
       Printf.eprintf
         "bench: %s=%S is not a number (expected e.g. %s=0.05)\n" name v name;
       exit 2)

let cfg =
  { Experiments.Config.default with
    Experiments.Config.scale = env_scale "SPINE_SCALE" 0.05;
    disk_scale = env_scale "SPINE_DISK_SCALE" 0.005 }

(* --- micro-bench inputs (memoized through Experiments.Data) --- *)

let eco () = Experiments.Data.load ~scale:bench_scale Bioseq.Corpus.eco

let query () =
  Experiments.Data.homologous_query ~scale:bench_scale
    ~data_corpus:Bioseq.Corpus.eco Bioseq.Corpus.cel

let spine_index = lazy (Spine.Compact.of_seq (eco ()))
let spine_fast = lazy (Spine.Index.of_seq (eco ()))
let st_index = lazy (Suffix_tree.build (eco ()))

let disk_seq () = Experiments.Data.load ~scale:0.001 Bioseq.Corpus.eco

(* --- packed-row comparison kernels (micro:packed) ---

   The word-packed sequence core compares 31 DNA codes (62 usable bits
   at 2 bits/code) per 64-bit load; these kernels put the whole-word
   path next to the per-code oracle it replaced, over the same inputs,
   so the artifact records the measured win (and the narrower protein
   win at 7 codes/word, and the mixed-width scalar fallback cost). *)

let packed_row alphabet ~seed n =
  let size = Bioseq.Alphabet.size alphabet in
  let rng = Bioseq.Rng.create seed in
  let s = Bioseq.Packed_seq.create ~capacity:n alphabet in
  for _ = 1 to n do
    Bioseq.Packed_seq.append s (Bioseq.Rng.int rng size)
  done;
  s

let mib = 1 lsl 20

let dna_pair =
  lazy
    (let a = packed_row Bioseq.Alphabet.dna ~seed:11 mib in
     (a, Bioseq.Packed_seq.copy a))

let protein_pair =
  lazy
    (let a = packed_row Bioseq.Alphabet.protein ~seed:12 mib in
     (a, Bioseq.Packed_seq.copy a))

(* appending the separator widens the copy 2 -> 4 bits/code, so the
   rows disagree on width and mismatch takes its scalar fallback *)
let mixed_pair =
  lazy
    (let a = packed_row Bioseq.Alphabet.dna ~seed:13 (64 * 1024) in
     let b = Bioseq.Packed_seq.copy a in
     Bioseq.Packed_seq.append b (Bioseq.Alphabet.separator Bioseq.Alphabet.dna);
     (a, b))

let scalar_common_prefix a b =
  let n = min (Bioseq.Packed_seq.length a) (Bioseq.Packed_seq.length b) in
  let i = ref 0 in
  while
    !i < n && Bioseq.Packed_seq.get a !i = Bioseq.Packed_seq.get b !i
  do
    incr i
  done;
  !i

(* a 256-code prefix of the indexed string: the descent stays on the
   backbone the whole way, which is where word comparison pays *)
let descent_input =
  lazy
    (let data = eco () in
     let codes = Array.init 256 (Bioseq.Packed_seq.get data) in
     let e = Spine.Compact.engine (Lazy.force spine_index) in
     (codes, Spine.Engine.pattern e codes))

let occ_pattern =
  lazy
    (let data = eco () in
     let codes = Array.init 64 (Bioseq.Packed_seq.get data) in
     let e = Spine.Compact.engine (Lazy.force spine_index) in
     Spine.Engine.pattern e codes)

let tests =
  [ (* Table 2 is static accounting; its kernel is the space model *)
    Test.make ~name:"table2/naive-node-accounting"
      (Staged.stage (fun () ->
           Spine.Space.naive_node_bytes Bioseq.Alphabet.dna))
  ; (* Tables 3/4 and Figure 8 all reduce to one pass over the built
       structure *)
    Test.make ~name:"table3/label-maxima"
      (Staged.stage (fun () ->
           Spine.Compact.label_maxima (Lazy.force spine_index)))
  ; Test.make ~name:"table4/rib-distribution"
      (Staged.stage (fun () ->
           Spine.Compact.rib_distribution (Lazy.force spine_index)))
  ; Test.make ~name:"fig8/link-histogram"
      (Staged.stage (fun () ->
           Spine.Compact.link_histogram (Lazy.force spine_index) ~buckets:10))
  ; (* Figure 6: in-memory construction *)
    Test.make ~name:"fig6/spine-construction"
      (Staged.stage (fun () -> Spine.Compact.of_seq (eco ())))
  ; Test.make ~name:"fig6/suffix-tree-construction"
      (Staged.stage (fun () -> Suffix_tree.build (eco ())))
  ; (* Tables 5/6: in-memory maximal matching *)
    Test.make ~name:"table5/spine-matching"
      (Staged.stage (fun () ->
           Spine.Compact.maximal_matches (Lazy.force spine_index)
             ~threshold:20 (query ())))
  ; Test.make ~name:"table5/suffix-tree-matching"
      (Staged.stage (fun () ->
           Suffix_tree.maximal_matches (Lazy.force st_index) ~threshold:20
             (query ())))
  ; Test.make ~name:"table6/spine-matching-statistics"
      (Staged.stage (fun () ->
           Spine.Compact.matching_statistics (Lazy.force spine_index)
             (query ())))
  ; (* Figure 7 / Table 7: disk-resident construction through the
       buffer pool *)
    Test.make ~name:"fig7/spine-disk-construction"
      (Staged.stage (fun () -> Spine.Disk.build (disk_seq ())))
  ; Test.make ~name:"table7/spine-disk-equivalent-search"
      (Staged.stage (fun () ->
           (* occurrence resolution is the disk search's dominant scan *)
           Spine.Compact.occurrences (Lazy.force spine_index)
             [| 0; 1; 2; 3; 0; 1 |]))
  ; (* Section 5 space: full measurement pass *)
    Test.make ~name:"space/bytes-per-char"
      (Staged.stage (fun () ->
           Spine.Compact.bytes_per_char (Lazy.force spine_index)))
  ; (* Section 5.2 proteins: protein construction kernel *)
    Test.make ~name:"proteins/spine-construction"
      (Staged.stage (fun () ->
           Spine.Compact.of_seq
             (Experiments.Data.load ~scale:0.01 Bioseq.Corpus.eco_r)))
  ; (* ablations: fast store and deferred vs immediate scans *)
    Test.make ~name:"ablation/hashtable-store-construction"
      (Staged.stage (fun () -> Spine.Index.of_seq (eco ())))
  ; Test.make ~name:"ablation/deferred-occurrence-scan"
      (Staged.stage (fun () ->
           Spine.Index.maximal_matches (Lazy.force spine_fast) ~threshold:16
             (query ())))
  ; Test.make ~name:"ablation/immediate-occurrence-scan"
      (Staged.stage (fun () ->
           Spine.Index.maximal_matches ~immediate:true
             (Lazy.force spine_fast) ~threshold:16 (query ())))
  ; (* packed-row kernels: whole-word compare vs the per-code oracle *)
    Test.make ~name:"packed/word-mismatch-dna-1mib"
      (Staged.stage (fun () ->
           let a, b = Lazy.force dna_pair in
           Bioseq.Packed_seq.mismatch a ~apos:0 b ~bpos:0
             ~len:(Bioseq.Packed_seq.length a)))
  ; Test.make ~name:"packed/scalar-mismatch-dna-1mib"
      (Staged.stage (fun () ->
           let a, b = Lazy.force dna_pair in
           scalar_common_prefix a b))
  ; Test.make ~name:"packed/word-mismatch-protein-1mib"
      (Staged.stage (fun () ->
           let a, b = Lazy.force protein_pair in
           Bioseq.Packed_seq.mismatch a ~apos:0 b ~bpos:0
             ~len:(Bioseq.Packed_seq.length a)))
  ; Test.make ~name:"packed/mixed-width-fallback-64kib"
      (Staged.stage (fun () ->
           let a, b = Lazy.force mixed_pair in
           Bioseq.Packed_seq.mismatch a ~apos:0 b ~bpos:0
             ~len:(Bioseq.Packed_seq.length a)))
  ; Test.make ~name:"packed/word-descent-256"
      (Staged.stage (fun () ->
           let _, pat = Lazy.force descent_input in
           let c = Spine.Compact.Cursor.create (Lazy.force spine_index) in
           Spine.Compact.Cursor.advance_pattern c pat))
  ; Test.make ~name:"packed/scalar-descent-256"
      (Staged.stage (fun () ->
           let codes, _ = Lazy.force descent_input in
           let c = Spine.Compact.Cursor.create (Lazy.force spine_index) in
           Array.iter
             (fun code -> ignore (Spine.Compact.Cursor.advance c code))
             codes))
  ; Test.make ~name:"packed/occurrence-scan-dna-64"
      (Staged.stage (fun () ->
           Spine.Engine.occurrences_pattern
             (Spine.Compact.engine (Lazy.force spine_index))
             (Lazy.force occ_pattern)))
  ]

(* Returns (name, estimated ns/run) per test so the trajectory artifact
   records what was printed.  [prefixes] restricts the run to tests
   whose name starts with any of the given prefixes (the CLI's
   [micro:<prefix>] arguments); the empty list means every test. *)
let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let run_microbenches ?(prefixes = []) () =
  let tests =
    match prefixes with
    | [] -> tests
    | ps ->
      List.filter
        (fun t ->
          let name = Test.name t in
          List.exists (fun p -> starts_with ~prefix:p name) ps)
        tests
  in
  print_newline ();
  print_endline "Bechamel micro-benchmarks (one group per table/figure)";
  print_endline "------------------------------------------------------";
  let benchmark_cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.concat_map
    (fun test ->
      let results =
        Benchmark.all benchmark_cfg [ Instance.monotonic_clock ]
          (Test.make_grouped ~name:"g" [ test ])
      in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.fold
        (fun name ols_result acc ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          let pretty =
            if ns >= 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
            else if ns >= 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
            else Printf.sprintf "%8.0f ns" ns
          in
          Printf.printf "  %-42s %s/run\n%!" name pretty;
          (* drop the synthetic "g/" grouping prefix from the stable name *)
          let name =
            if String.length name > 2 && String.sub name 0 2 = "g/" then
              String.sub name 2 (String.length name - 2)
            else name
          in
          (name, ns) :: acc)
        analyzed [])
    tests

(* Degraded-mode smoke: per-op p99 service time under injected device
   latency with a resilience policy armed, measured through the chaos
   scenario runner so the bench gate watches the same path CI's
   chaos-scenarios job certifies.  The p99s ride in the artifact as
   their own "scenario" group (unit p99_ns). *)
let scenario_smoke_text =
  String.concat "\n"
    [ {|{"scenario": "bench-degraded", "seed": 42}|};
      {|{"stage": "build", "chars": 12000, "chunks": 3, "frames": 16}|};
      {|{"stage": "latency", "read_us": 20, "write_us": 10, "jitter_us": 20}|};
      {|{"stage": "workload", "requests": 120, "mix": {"single": 6, "batch": 2, "cursor": 2}, "resilience": {"deadline_ms": 2000}}|}
    ]

let run_scenario_smoke () =
  print_newline ();
  print_endline "Degraded-mode smoke (injected latency, resilient workload)";
  print_endline "----------------------------------------------------------";
  match Scenario.parse scenario_smoke_text with
  | Error e -> Printf.eprintf "scenario smoke: %s\n" e; []
  | Ok sc -> (
    match Scenario.run sc with
    | Error e -> Printf.eprintf "scenario smoke: %s\n" e; []
    | Ok r -> (
      match r.Scenario.r_report with
      | None -> []
      | Some rep ->
        List.filter_map
          (fun (o : Workload.op_report) ->
            if o.Workload.count = 0 then None
            else begin
              Printf.printf "  degraded-p99-%-28s %8.3f ms\n" o.Workload.op
                (o.Workload.p99_ns /. 1e6);
              Some ("degraded-p99-" ^ o.Workload.op, o.Workload.p99_ns)
            end)
          rep.Workload.ops))

(* With telemetry enabled, leave a machine-readable artifact of every
   counter/histogram/span the run accumulated next to the tables. *)
let emit_telemetry_artifact () =
  if Telemetry.is_enabled () then begin
    let path =
      Option.value
        (Sys.getenv_opt "SPINE_TELEMETRY_JSON")
        ~default:"spine_telemetry.jsonl"
    in
    Telemetry.write_jsonl ~path (Telemetry.snapshot ());
    Printf.printf "\ntelemetry artifact written to %s\n" path
  end

(* With tracing enabled (SPINE_TRACE=1), leave the buffered event ring
   as a Chrome trace next to the tables. *)
let emit_trace_artifact () =
  if Trace.is_enabled () then begin
    let path =
      Option.value (Sys.getenv_opt "SPINE_TRACE_JSON")
        ~default:"spine_trace.json"
    in
    Trace.write_chrome ~path;
    Printf.printf "trace artifact written to %s (%d event(s), %d dropped)\n"
      path (List.length (Trace.events ())) (Trace.dropped ())
  end

(* The machine-readable run trajectory: config, wall time per
   experiment, and the Bechamel per-run estimates.  CI uploads it so
   successive runs can be diffed without scraping stdout. *)
(* The committed baseline lives at the repo root; dune runs executables
   from _build contexts, so resolve the default path by walking up to
   the directory holding dune-project rather than trusting cwd. *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let emit_bench_artifact ~experiments ~micro ~scenario =
  let path =
    match Sys.getenv_opt "SPINE_BENCH_JSON" with
    | Some path -> path
    | None ->
      let root = Option.value (repo_root ()) ~default:"." in
      Filename.concat root "BENCH_spine.json"
  in
  let buf = Buffer.create 4096 in
  let json_float f =
    (* NaN (a failed OLS fit) has no JSON literal *)
    if Float.is_nan f then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f
  in
  let row kind (name, value) =
    Printf.sprintf "    {\"name\": %S, \"%s\": %s}" name kind
      (json_float value)
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"spine-bench/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"config\": {\"scale\": %s, \"disk_scale\": %s, \"bench_scale\": %s},\n"
       (json_float cfg.Experiments.Config.scale)
       (json_float cfg.Experiments.Config.disk_scale)
       (json_float bench_scale));
  Buffer.add_string buf "  \"experiments\": [\n";
  Buffer.add_string buf
    (String.concat ",\n" (List.map (row "wall_s") experiments));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"micro\": [\n";
  Buffer.add_string buf
    (String.concat ",\n" (List.map (row "ns_per_run") micro));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"scenario\": [\n";
  Buffer.add_string buf
    (String.concat ",\n" (List.map (row "p99_ns") scenario));
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "bench trajectory written to %s\n" path

(* Arguments name experiments ("table5"), the whole micro layer
   ("micro"), or a micro family ("micro:packed"); they combine freely,
   e.g. `bench/main.exe table2 table3 space micro:packed`. *)
let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scenario_args, args =
    List.partition (fun a -> a = "scenario") args
  in
  let micro_prefixes, exp_names =
    List.partition_map
      (fun a ->
        if a = "micro" then Either.Left ""
        else if starts_with ~prefix:"micro:" a then
          Either.Left (String.sub a 6 (String.length a - 6))
        else Either.Right a)
      args
  in
  let experiments, micro, scenario =
    match (args, scenario_args) with
    | [], [] ->
      Printf.printf
        "SPINE reproduction bench (scale %g, disk scale %g)\n"
        cfg.Experiments.Config.scale cfg.Experiments.Config.disk_scale;
      let experiments = Experiments.Registry.run_all cfg in
      (experiments, run_microbenches (), run_scenario_smoke ())
    | _ ->
      let experiments =
        List.filter_map
          (fun name ->
            match Experiments.Registry.find name with
            | Some e -> Some (name, Experiments.Registry.run_one cfg e)
            | None -> Printf.eprintf "unknown experiment %S\n" name; None)
          exp_names
      in
      let micro =
        if micro_prefixes = [] then []
        else run_microbenches ~prefixes:(List.filter (fun p -> p <> "") micro_prefixes) ()
      in
      let scenario =
        if scenario_args = [] then [] else run_scenario_smoke ()
      in
      (experiments, micro, scenario)
  in
  emit_bench_artifact ~experiments ~micro ~scenario;
  emit_telemetry_artifact ();
  emit_trace_artifact ()
