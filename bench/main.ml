(* Benchmark entry point.

   Two layers, both emitted to stdout:

   1. The experiment harness regenerates every table and figure of the
      paper's evaluation section (Tables 2-7, Figures 6-8, plus the
      Section 5 space accounting, the Section 5.2 protein runs and the
      ablations). `bench/main.exe table5` runs a single experiment;
      no arguments runs everything.

   2. One Bechamel micro-benchmark group per table/figure, measuring
      the kernel operation each experiment times (construction,
      matching, disk construction, occurrence scans), with proper
      OLS-estimated per-run costs.

   Scales are modest by default so the full run finishes in minutes;
   use bin/experiments_main.exe (or SPINE_SCALE / SPINE_DISK_SCALE) for
   full-scale runs. *)

open Bechamel
open Toolkit

let bench_scale = 0.01      (* corpus fraction for micro-bench inputs *)

let cfg =
  { Experiments.Config.default with
    Experiments.Config.scale =
      (match Sys.getenv_opt "SPINE_SCALE" with
       | Some v -> float_of_string v
       | None -> 0.05);
    disk_scale =
      (match Sys.getenv_opt "SPINE_DISK_SCALE" with
       | Some v -> float_of_string v
       | None -> 0.005) }

(* --- micro-bench inputs (memoized through Experiments.Data) --- *)

let eco () = Experiments.Data.load ~scale:bench_scale Bioseq.Corpus.eco

let query () =
  Experiments.Data.homologous_query ~scale:bench_scale
    ~data_corpus:Bioseq.Corpus.eco Bioseq.Corpus.cel

let spine_index = lazy (Spine.Compact.of_seq (eco ()))
let spine_fast = lazy (Spine.Index.of_seq (eco ()))
let st_index = lazy (Suffix_tree.build (eco ()))

let disk_seq () = Experiments.Data.load ~scale:0.001 Bioseq.Corpus.eco

let tests =
  [ (* Table 2 is static accounting; its kernel is the space model *)
    Test.make ~name:"table2/naive-node-accounting"
      (Staged.stage (fun () ->
           Spine.Space.naive_node_bytes Bioseq.Alphabet.dna))
  ; (* Tables 3/4 and Figure 8 all reduce to one pass over the built
       structure *)
    Test.make ~name:"table3/label-maxima"
      (Staged.stage (fun () ->
           Spine.Compact.label_maxima (Lazy.force spine_index)))
  ; Test.make ~name:"table4/rib-distribution"
      (Staged.stage (fun () ->
           Spine.Compact.rib_distribution (Lazy.force spine_index)))
  ; Test.make ~name:"fig8/link-histogram"
      (Staged.stage (fun () ->
           Spine.Compact.link_histogram (Lazy.force spine_index) ~buckets:10))
  ; (* Figure 6: in-memory construction *)
    Test.make ~name:"fig6/spine-construction"
      (Staged.stage (fun () -> Spine.Compact.of_seq (eco ())))
  ; Test.make ~name:"fig6/suffix-tree-construction"
      (Staged.stage (fun () -> Suffix_tree.build (eco ())))
  ; (* Tables 5/6: in-memory maximal matching *)
    Test.make ~name:"table5/spine-matching"
      (Staged.stage (fun () ->
           Spine.Compact.maximal_matches (Lazy.force spine_index)
             ~threshold:20 (query ())))
  ; Test.make ~name:"table5/suffix-tree-matching"
      (Staged.stage (fun () ->
           Suffix_tree.maximal_matches (Lazy.force st_index) ~threshold:20
             (query ())))
  ; Test.make ~name:"table6/spine-matching-statistics"
      (Staged.stage (fun () ->
           Spine.Compact.matching_statistics (Lazy.force spine_index)
             (query ())))
  ; (* Figure 7 / Table 7: disk-resident construction through the
       buffer pool *)
    Test.make ~name:"fig7/spine-disk-construction"
      (Staged.stage (fun () -> Spine.Disk.build (disk_seq ())))
  ; Test.make ~name:"table7/spine-disk-equivalent-search"
      (Staged.stage (fun () ->
           (* occurrence resolution is the disk search's dominant scan *)
           Spine.Compact.occurrences (Lazy.force spine_index)
             [| 0; 1; 2; 3; 0; 1 |]))
  ; (* Section 5 space: full measurement pass *)
    Test.make ~name:"space/bytes-per-char"
      (Staged.stage (fun () ->
           Spine.Compact.bytes_per_char (Lazy.force spine_index)))
  ; (* Section 5.2 proteins: protein construction kernel *)
    Test.make ~name:"proteins/spine-construction"
      (Staged.stage (fun () ->
           Spine.Compact.of_seq
             (Experiments.Data.load ~scale:0.01 Bioseq.Corpus.eco_r)))
  ; (* ablations: fast store and deferred vs immediate scans *)
    Test.make ~name:"ablation/hashtable-store-construction"
      (Staged.stage (fun () -> Spine.Index.of_seq (eco ())))
  ; Test.make ~name:"ablation/deferred-occurrence-scan"
      (Staged.stage (fun () ->
           Spine.Index.maximal_matches (Lazy.force spine_fast) ~threshold:16
             (query ())))
  ; Test.make ~name:"ablation/immediate-occurrence-scan"
      (Staged.stage (fun () ->
           Spine.Index.maximal_matches ~immediate:true
             (Lazy.force spine_fast) ~threshold:16 (query ())))
  ]

let run_microbenches () =
  print_newline ();
  print_endline "Bechamel micro-benchmarks (one group per table/figure)";
  print_endline "------------------------------------------------------";
  let benchmark_cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all benchmark_cfg [ Instance.monotonic_clock ]
          (Test.make_grouped ~name:"g" [ test ])
      in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          let pretty =
            if ns >= 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
            else if ns >= 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
            else Printf.sprintf "%8.0f ns" ns
          in
          Printf.printf "  %-42s %s/run\n%!" name pretty)
        analyzed)
    tests

(* With telemetry enabled, leave a machine-readable artifact of every
   counter/histogram/span the run accumulated next to the tables. *)
let emit_telemetry_artifact () =
  if Telemetry.is_enabled () then begin
    let path =
      Option.value
        (Sys.getenv_opt "SPINE_TELEMETRY_JSON")
        ~default:"spine_telemetry.jsonl"
    in
    Telemetry.write_jsonl ~path (Telemetry.snapshot ());
    Printf.printf "\ntelemetry artifact written to %s\n" path
  end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (match args with
  | [] ->
    Printf.printf
      "SPINE reproduction bench (scale %g, disk scale %g)\n"
      cfg.Experiments.Config.scale cfg.Experiments.Config.disk_scale;
    Experiments.Registry.run_all cfg;
    run_microbenches ()
  | [ "micro" ] -> run_microbenches ()
  | names ->
    List.iter
      (fun name ->
        match Experiments.Registry.find name with
        | Some e -> ignore (Experiments.Registry.run_one cfg e)
        | None -> Printf.eprintf "unknown experiment %S\n" name)
      names);
  emit_telemetry_artifact ()
